//! Bit-level Hamming SECDED(72,64).
//!
//! The classic extended Hamming construction: 64 data bits are spread over
//! codeword positions `1..=71`, skipping the seven power-of-two positions
//! (1, 2, 4, 8, 16, 32, 64) which hold Hamming check bits; position 0 holds
//! an overall parity bit covering the entire 72-bit word. Seven check bits
//! give single-error *location*; the overall parity disambiguates single
//! (correctable) from double (detectable but uncorrectable) errors.
//!
//! Codewords are carried in the low 72 bits of a `u128`.

/// Number of bits in a codeword.
pub const CODEWORD_BITS: u32 = 72;
/// Number of data bits protected per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of check bits (7 Hamming + 1 overall parity).
pub const CHECK_BITS: u32 = 8;

/// Outcome of decoding a 72-bit codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decoded {
    /// The codeword was clean.
    Clean {
        /// The decoded 64-bit data word.
        data: u64,
    },
    /// A single-bit error was found and corrected.
    Corrected {
        /// The corrected 64-bit data word.
        data: u64,
        /// Codeword bit position (0..72) that was flipped.
        bit: u32,
    },
    /// Two bit errors were detected; the data is unrecoverable.
    DoubleError,
}

impl Decoded {
    /// The recovered data, unless the error was uncorrectable.
    pub fn data(self) -> Option<u64> {
        match self {
            Decoded::Clean { data } | Decoded::Corrected { data, .. } => Some(data),
            Decoded::DoubleError => None,
        }
    }
}

#[inline]
fn is_power_of_two(v: u32) -> bool {
    v != 0 && v & (v - 1) == 0
}

/// Encodes 64 data bits into a 72-bit SECDED codeword (low 72 bits of the
/// returned value).
pub fn encode(data: u64) -> u128 {
    let mut cw: u128 = 0;
    // Scatter data bits into non-power-of-two positions 3,5,6,7,9,...,71.
    let mut d = 0u32;
    for pos in 1..CODEWORD_BITS {
        if !is_power_of_two(pos) {
            if (data >> d) & 1 == 1 {
                cw |= 1u128 << pos;
            }
            d += 1;
        }
    }
    debug_assert_eq!(d, DATA_BITS);
    // Hamming check bits: check bit at position 2^i covers every position
    // whose index has bit i set.
    for i in 0..7u32 {
        let p = 1u32 << i;
        let mut parity = 0u32;
        for pos in 1..CODEWORD_BITS {
            if pos & p != 0 && !is_power_of_two(pos) {
                parity ^= ((cw >> pos) & 1) as u32;
            }
        }
        if parity == 1 {
            cw |= 1u128 << p;
        }
    }
    // Overall parity (position 0) makes the whole 72-bit word even parity.
    if (cw.count_ones() & 1) == 1 {
        cw |= 1;
    }
    cw
}

/// Extracts the data bits of a codeword without any checking.
pub fn extract_data(cw: u128) -> u64 {
    let mut data = 0u64;
    let mut d = 0u32;
    for pos in 1..CODEWORD_BITS {
        if !is_power_of_two(pos) {
            if (cw >> pos) & 1 == 1 {
                data |= 1u64 << d;
            }
            d += 1;
        }
    }
    data
}

/// The 8 check bits of a codeword packed into a byte: overall parity in bit
/// 0, Hamming check bit `2^i` in bit `i + 1`. This is the byte stored on the
/// ECC chip for each data word.
pub fn check_byte(cw: u128) -> u8 {
    let mut b = (cw & 1) as u8;
    for i in 0..7u32 {
        let p = 1u32 << i;
        if (cw >> p) & 1 == 1 {
            b |= 1 << (i + 1);
        }
    }
    b
}

/// Reassembles a codeword from a data word and a check byte produced by
/// [`check_byte`].
pub fn assemble(data: u64, check: u8) -> u128 {
    let mut cw: u128 = 0;
    let mut d = 0u32;
    for pos in 1..CODEWORD_BITS {
        if !is_power_of_two(pos) {
            if (data >> d) & 1 == 1 {
                cw |= 1u128 << pos;
            }
            d += 1;
        }
    }
    if check & 1 != 0 {
        cw |= 1;
    }
    for i in 0..7u32 {
        if (check >> (i + 1)) & 1 == 1 {
            cw |= 1u128 << (1u32 << i);
        }
    }
    cw
}

/// Decodes a 72-bit codeword, correcting a single-bit error and detecting
/// double-bit errors.
pub fn decode(cw: u128) -> Decoded {
    // Recompute the syndrome: XOR of positions with a set bit, over the
    // Hamming-covered region (positions 1..72).
    let mut syndrome = 0u32;
    for pos in 1..CODEWORD_BITS {
        if (cw >> pos) & 1 == 1 {
            syndrome ^= pos;
        }
    }
    let parity_ok = cw.count_ones() & 1 == 0;

    match (syndrome, parity_ok) {
        (0, true) => Decoded::Clean {
            data: extract_data(cw),
        },
        (0, false) => {
            // The overall parity bit itself flipped; data is intact.
            Decoded::Corrected {
                data: extract_data(cw),
                bit: 0,
            }
        }
        (s, false) if s < CODEWORD_BITS => {
            let fixed = cw ^ (1u128 << s);
            Decoded::Corrected {
                data: extract_data(fixed),
                bit: s,
            }
        }
        // Non-zero syndrome with even parity ⇒ an even number (≥2) of
        // flipped bits; and syndromes pointing outside the word are also
        // multi-bit corruptions.
        _ => Decoded::DoubleError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_round_trip() {
        for data in [0u64, u64::MAX, 0xdead_beef_cafe_f00d, 1, 1 << 63] {
            let cw = encode(data);
            assert_eq!(decode(cw), Decoded::Clean { data });
            assert!(cw >> CODEWORD_BITS == 0, "codeword fits in 72 bits");
        }
    }

    #[test]
    fn corrects_every_single_bit_position() {
        let data = 0x0123_4567_89ab_cdef_u64;
        let cw = encode(data);
        for bit in 0..CODEWORD_BITS {
            let corrupted = cw ^ (1u128 << bit);
            match decode(corrupted) {
                Decoded::Corrected { data: d, bit: b } => {
                    assert_eq!(d, data, "bit {bit}");
                    assert_eq!(b, bit);
                }
                other => panic!("bit {bit}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let data = 0xf0f0_a5a5_3c3c_9696_u64;
        let cw = encode(data);
        for b1 in 0..CODEWORD_BITS {
            for b2 in (b1 + 1)..CODEWORD_BITS {
                let corrupted = cw ^ (1u128 << b1) ^ (1u128 << b2);
                assert_eq!(
                    decode(corrupted),
                    Decoded::DoubleError,
                    "bits {b1},{b2} must be detected"
                );
            }
        }
    }

    #[test]
    fn check_byte_assemble_round_trip() {
        let data = 0x1122_3344_5566_7788_u64;
        let cw = encode(data);
        let byte = check_byte(cw);
        assert_eq!(assemble(data, byte), cw);
        assert_eq!(extract_data(cw), data);
    }

    #[test]
    fn decoded_data_accessor() {
        assert_eq!(Decoded::Clean { data: 5 }.data(), Some(5));
        assert_eq!(Decoded::Corrected { data: 6, bit: 3 }.data(), Some(6));
        assert_eq!(Decoded::DoubleError.data(), None);
    }

    proptest! {
        #[test]
        fn prop_round_trip(data: u64) {
            prop_assert_eq!(decode(encode(data)), Decoded::Clean { data });
        }

        #[test]
        fn prop_single_error_corrected(data: u64, bit in 0u32..72) {
            let corrupted = encode(data) ^ (1u128 << bit);
            prop_assert_eq!(decode(corrupted).data(), Some(data));
        }

        #[test]
        fn prop_double_error_detected(data: u64, b1 in 0u32..72, b2 in 0u32..72) {
            prop_assume!(b1 != b2);
            let corrupted = encode(data) ^ (1u128 << b1) ^ (1u128 << b2);
            prop_assert_eq!(decode(corrupted), Decoded::DoubleError);
        }

        #[test]
        fn prop_check_byte_round_trip(data: u64) {
            let cw = encode(data);
            prop_assert_eq!(assemble(data, check_byte(cw)), cw);
        }
    }
}
