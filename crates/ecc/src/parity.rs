//! The PCC (parity correction code): XOR parity across a line's words.
//!
//! PCMap's RoW mechanism treats the one data chip busy with a write as
//! *faulty* and reconstructs its word from the other seven data words plus
//! the PCC word, exactly like a RAID-5 stripe rebuild (§IV-B). The code here
//! is deliberately simple — the controller always knows *which* chip is
//! missing, so pure XOR erasure recovery suffices.

use pcmap_types::{CacheLine, WORDS_PER_LINE};

/// XOR parity of all eight words of a line — the word stored on the PCC
/// chip.
pub fn parity_of(line: &CacheLine) -> u64 {
    line.parity_word()
}

/// Reconstructs the word at `missing` from the other seven words and the
/// parity word.
///
/// `present` supplies the line with the missing word's slot holding any
/// stale value; only the other seven slots are read.
///
/// # Panics
///
/// Panics if `missing >= 8`.
pub fn reconstruct_word(present: &CacheLine, missing: usize, parity: u64) -> u64 {
    assert!(
        missing < WORDS_PER_LINE,
        "word index {missing} out of range"
    );
    let mut acc = parity;
    for i in 0..WORDS_PER_LINE {
        if i != missing {
            acc ^= present.word(i);
        }
    }
    acc
}

/// Incrementally updates a stored parity word when one data word changes
/// (`new_parity = old_parity ^ old_word ^ new_word`) — how the PCC chip is
/// kept current by the second step of a RoW-split write without re-reading
/// the whole line.
pub fn update_parity(old_parity: u64, old_word: u64, new_word: u64) -> u64 {
    old_parity ^ old_word ^ new_word
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reconstructs_each_position() {
        let line = CacheLine::from_seed(0xabcd);
        let p = parity_of(&line);
        for missing in 0..WORDS_PER_LINE {
            let mut stale = line;
            stale.set_word(missing, 0xfeed_face); // garbage in the missing slot
            assert_eq!(reconstruct_word(&stale, missing, p), line.word(missing));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reconstruct_rejects_bad_index() {
        let line = CacheLine::zeroed();
        reconstruct_word(&line, 8, 0);
    }

    #[test]
    fn incremental_update_matches_recompute() {
        let mut line = CacheLine::from_seed(7);
        let p0 = parity_of(&line);
        let old = line.word(3);
        line.set_word(3, 0x1234_5678);
        assert_eq!(update_parity(p0, old, line.word(3)), parity_of(&line));
    }

    proptest! {
        #[test]
        fn prop_reconstruct_any_erasure(seed: u64, missing in 0usize..8) {
            let line = CacheLine::from_seed(seed);
            let p = parity_of(&line);
            prop_assert_eq!(reconstruct_word(&line, missing, p), line.word(missing));
        }

        #[test]
        fn prop_incremental_equals_full(seed: u64, idx in 0usize..8, new_word: u64) {
            let mut line = CacheLine::from_seed(seed);
            let p0 = parity_of(&line);
            let old = line.word(idx);
            line.set_word(idx, new_word);
            prop_assert_eq!(update_parity(p0, old, new_word), parity_of(&line));
        }
    }
}
