//! Calibrated workload models for the PCMap simulator.
//!
//! The paper drives its evaluation with SPEC CPU 2006 (multi-programmed
//! mixes MP1–MP6), PARSEC-2 (8-thread runs) and STREAM. We cannot ship
//! those binaries, so each application is modeled as an [`AppProfile`]: a
//! stochastic post-LLC request generator calibrated to the statistics the
//! paper reports —
//!
//! - **RPKI/WPKI** per workload (Table II),
//! - the **essential-word histogram** of write-backs (Figure 2: 14 %
//!   single-word for omnetpp up to 52 % for cactusADM; footnote 3 gives the
//!   cross-application averages),
//! - **row-buffer locality** (sequential-run behaviour),
//! - the **32 % same-offset correlation** between successive write-backs
//!   (§IV-C2 — the clustering that data rotation de-clusters),
//! - the **consumed-before-check fraction** under RoW (Table IV: canneal
//!   5.8 %, facesim 4.1 %, MP6 3.4 %, ferret 2.2 %; 1.3 % average).
//!
//! Every PCMap mechanism is sensitive only to these stream statistics, so
//! reproducing them reproduces the experiments' shape (see DESIGN.md §4).
//!
//! # Example
//!
//! ```
//! use pcmap_workloads::{catalog, CoreStream, StreamOp};
//!
//! let wl = catalog::by_name("canneal").expect("known workload");
//! let mut gen = CoreStream::new(&wl.per_core[0], 0, 99);
//! match gen.next_op() {
//!     StreamOp::Compute(n) => assert!(n > 0),
//!     StreamOp::Read(_) | StreamOp::Write { .. } => {}
//! }
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod generator;
pub mod profile;
pub mod trace;

pub use catalog::Workload;
pub use generator::{CoreStream, StreamOp};
pub use profile::AppProfile;
pub use trace::Trace;
