//! Per-application workload profiles.

/// The statistical fingerprint of one application's post-LLC memory
/// behaviour (see crate docs for where each field is calibrated from).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Application name (SPEC/PARSEC program).
    pub name: &'static str,
    /// PCM reads per kilo-instruction.
    pub rpki: f64,
    /// PCM writes per kilo-instruction.
    pub wpki: f64,
    /// Essential-word histogram: weight of write-backs dirtying exactly
    /// `i` 8-byte words, `i = 0..=8` (need not be normalized).
    pub dirty_hist: [f64; 9],
    /// Probability that the next access continues the current sequential
    /// run (drives row-buffer hit rate and bank locality).
    pub row_locality: f64,
    /// Probability that a write-back reuses the previous write-back's dirty
    /// offsets (§IV-C2 reports 32 % on average).
    pub offset_corr: f64,
    /// Working-set footprint in cache lines.
    pub footprint_lines: u64,
    /// Probability a RoW-served read is consumed before its deferred check
    /// (Table IV).
    pub rollback_p: f64,
}

impl AppProfile {
    /// Mean essential words per write-back implied by the histogram.
    pub fn mean_dirty_words(&self) -> f64 {
        let total: f64 = self.dirty_hist.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.dirty_hist
            .iter()
            .enumerate()
            .map(|(i, w)| i as f64 * w)
            .sum::<f64>()
            / total
    }

    /// Fraction of write-backs with fewer than 4 essential words.
    pub fn under_four_fraction(&self) -> f64 {
        let total: f64 = self.dirty_hist.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.dirty_hist[..4].iter().sum::<f64>() / total
    }

    /// Fraction of write-backs dirtying exactly one word.
    pub fn one_word_fraction(&self) -> f64 {
        let total: f64 = self.dirty_hist.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        self.dirty_hist[1] / total
    }

    /// Scales the memory intensity (RPKI and WPKI) by `factor`, leaving the
    /// shape parameters untouched. Used to calibrate mixes to Table II
    /// aggregates.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.rpki *= factor;
        self.wpki *= factor;
        self
    }

    /// Structural sanity checks.
    ///
    /// # Panics
    ///
    /// Panics if rates are negative, probabilities out of range, or the
    /// histogram sums to zero.
    pub fn validate(&self) {
        assert!(
            self.rpki >= 0.0 && self.wpki >= 0.0,
            "{}: negative rate",
            self.name
        );
        assert!(
            self.rpki + self.wpki > 0.0,
            "{}: no memory traffic",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.row_locality)
                && (0.0..=1.0).contains(&self.offset_corr)
                && (0.0..=1.0).contains(&self.rollback_p),
            "{}: probability out of range",
            self.name
        );
        assert!(
            self.dirty_hist.iter().sum::<f64>() > 0.0,
            "{}: empty histogram",
            self.name
        );
        assert!(
            self.footprint_lines > 8,
            "{}: degenerate footprint",
            self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppProfile {
        AppProfile {
            name: "sample",
            rpki: 4.0,
            wpki: 2.0,
            dirty_hist: [10.0, 30.0, 20.0, 10.0, 10.0, 8.0, 5.0, 3.0, 4.0],
            row_locality: 0.5,
            offset_corr: 0.32,
            footprint_lines: 1 << 16,
            rollback_p: 0.013,
        }
    }

    #[test]
    fn mean_dirty_words_weighted() {
        let p = sample();
        let m = p.mean_dirty_words();
        assert!((m - 2.63).abs() < 0.01, "mean = {m}");
    }

    #[test]
    fn fractions() {
        let p = sample();
        assert!((p.under_four_fraction() - 0.70).abs() < 1e-9);
        assert!((p.one_word_fraction() - 0.30).abs() < 1e-9);
    }

    #[test]
    fn scaling_touches_only_rates() {
        let p = sample().scaled(2.0);
        assert_eq!(p.rpki, 8.0);
        assert_eq!(p.wpki, 4.0);
        assert_eq!(p.offset_corr, 0.32);
    }

    #[test]
    fn validate_accepts_sane_profile() {
        sample().validate();
    }

    #[test]
    #[should_panic(expected = "no memory traffic")]
    fn validate_rejects_traffic_free_profile() {
        let mut p = sample();
        p.rpki = 0.0;
        p.wpki = 0.0;
        p.validate();
    }
}
