//! The workload catalog: SPEC CPU 2006, PARSEC-2, STREAM and the paper's
//! multi-programmed mixes MP1–MP6 (Table II).
//!
//! Quantitative anchors honored exactly:
//! - Table II RPKI/WPKI for the six listed PARSEC workloads and the MP
//!   mixes (mixes are rescaled so their aggregates match the table).
//! - Figure 2's single-word fractions: omnetpp 14 %, cactusADM 52 %.
//! - Table IV consumed-before-check rates: canneal 5.8 %, facesim 4.1 %,
//!   MP6 3.4 %, ferret 2.2 %.
//! - §IV-C2's 32 % successive-writeback offset correlation (default).
//!
//! Other per-application values are plausible extrapolations; every
//! experiment binary reports the *measured* statistics of the generated
//! streams next to the paper's numbers.

use crate::profile::AppProfile;

/// Default footprint: 2²⁰ lines = 64 MB per core slice.
const FOOTPRINT: u64 = 1 << 20;
/// Paper's average successive-writeback offset correlation.
const OFFSET_CORR: f64 = 0.32;
/// Paper's average consumed-before-check rate.
const ROLLBACK_AVG: f64 = 0.013;

fn app(
    name: &'static str,
    rpki: f64,
    wpki: f64,
    dirty_hist: [f64; 9],
    row_locality: f64,
    rollback_p: f64,
) -> AppProfile {
    AppProfile {
        name,
        rpki,
        wpki,
        dirty_hist,
        row_locality,
        offset_corr: OFFSET_CORR,
        footprint_lines: FOOTPRINT,
        rollback_p,
    }
}

/// The SPEC CPU 2006 programs used across Figures 1, 2 and the MP mixes.
pub fn spec_apps() -> Vec<AppProfile> {
    vec![
        app(
            "mcf",
            10.2,
            3.0,
            [8.0, 30.0, 22.0, 14.0, 10.0, 6.0, 4.0, 3.0, 3.0],
            0.30,
            ROLLBACK_AVG,
        ),
        app(
            "lbm",
            7.5,
            4.8,
            [2.0, 14.0, 12.0, 10.0, 12.0, 14.0, 12.0, 10.0, 14.0],
            0.85,
            ROLLBACK_AVG,
        ),
        app(
            "milc",
            5.8,
            2.4,
            [6.0, 25.0, 20.0, 14.0, 12.0, 8.0, 6.0, 4.0, 5.0],
            0.55,
            ROLLBACK_AVG,
        ),
        app(
            "leslie3d",
            4.9,
            2.1,
            [4.0, 20.0, 22.0, 16.0, 12.0, 10.0, 6.0, 4.0, 6.0],
            0.70,
            ROLLBACK_AVG,
        ),
        app(
            "gemsFDTD",
            4.15,
            2.6,
            [5.0, 22.0, 24.0, 16.0, 10.0, 8.0, 6.0, 4.0, 5.0],
            0.65,
            ROLLBACK_AVG,
        ),
        app(
            "libquantum",
            6.5,
            1.4,
            [3.0, 45.0, 25.0, 10.0, 6.0, 4.0, 3.0, 2.0, 2.0],
            0.90,
            ROLLBACK_AVG,
        ),
        app(
            "soplex",
            4.4,
            1.8,
            [7.0, 28.0, 20.0, 13.0, 10.0, 8.0, 6.0, 4.0, 4.0],
            0.50,
            ROLLBACK_AVG,
        ),
        app(
            "cactusADM",
            3.6,
            2.2,
            [4.0, 52.0, 15.0, 8.0, 7.0, 5.0, 4.0, 2.0, 3.0],
            0.60,
            ROLLBACK_AVG,
        ),
        app(
            "omnetpp",
            3.1,
            1.7,
            [12.0, 14.0, 17.0, 13.0, 12.0, 10.0, 8.0, 6.0, 8.0],
            0.35,
            ROLLBACK_AVG,
        ),
        app(
            "astar",
            8.05,
            5.65,
            [9.0, 32.0, 21.0, 12.0, 9.0, 7.0, 5.0, 3.0, 2.0],
            0.40,
            ROLLBACK_AVG,
        ),
        app(
            "sphinx3",
            3.4,
            1.2,
            [6.0, 35.0, 22.0, 12.0, 9.0, 6.0, 4.0, 3.0, 3.0],
            0.55,
            ROLLBACK_AVG,
        ),
        app(
            "gromacs",
            1.4,
            0.7,
            [8.0, 30.0, 22.0, 13.0, 9.0, 7.0, 5.0, 3.0, 3.0],
            0.60,
            ROLLBACK_AVG,
        ),
        app(
            "h264ref",
            1.1,
            0.6,
            [10.0, 26.0, 20.0, 14.0, 10.0, 8.0, 6.0, 3.0, 3.0],
            0.65,
            ROLLBACK_AVG,
        ),
    ]
}

/// The PARSEC-2 programs (all 13, for the paper's Average(MT)).
pub fn parsec_apps() -> Vec<AppProfile> {
    vec![
        app(
            "canneal",
            15.19,
            7.13,
            [6.0, 28.0, 22.0, 14.0, 10.0, 8.0, 5.0, 3.0, 4.0],
            0.25,
            0.058,
        ),
        app(
            "dedup",
            3.04,
            2.072,
            [8.0, 30.0, 20.0, 12.0, 10.0, 8.0, 5.0, 3.0, 4.0],
            0.45,
            ROLLBACK_AVG,
        ),
        app(
            "facesim",
            6.66,
            1.26,
            [5.0, 24.0, 22.0, 16.0, 12.0, 9.0, 5.0, 3.0, 4.0],
            0.60,
            0.041,
        ),
        app(
            "fluidanimate",
            5.54,
            1.51,
            [6.0, 26.0, 22.0, 15.0, 11.0, 8.0, 5.0, 3.0, 4.0],
            0.65,
            ROLLBACK_AVG,
        ),
        app(
            "freqmine",
            0.78,
            3.33,
            [10.0, 20.0, 18.0, 14.0, 12.0, 10.0, 7.0, 4.0, 5.0],
            0.50,
            ROLLBACK_AVG,
        ),
        app(
            "streamcluster",
            5.19,
            2.13,
            [4.0, 38.0, 24.0, 12.0, 8.0, 6.0, 4.0, 2.0, 2.0],
            0.80,
            ROLLBACK_AVG,
        ),
        app(
            "blackscholes",
            0.6,
            0.3,
            [10.0, 35.0, 20.0, 12.0, 8.0, 6.0, 4.0, 2.0, 3.0],
            0.75,
            ROLLBACK_AVG,
        ),
        app(
            "bodytrack",
            1.8,
            0.7,
            [9.0, 28.0, 21.0, 13.0, 10.0, 8.0, 5.0, 3.0, 3.0],
            0.55,
            ROLLBACK_AVG,
        ),
        app(
            "ferret",
            4.2,
            1.9,
            [7.0, 30.0, 22.0, 13.0, 9.0, 7.0, 5.0, 3.0, 4.0],
            0.50,
            0.022,
        ),
        app(
            "swaptions",
            0.5,
            0.2,
            [12.0, 30.0, 20.0, 12.0, 9.0, 7.0, 5.0, 2.0, 3.0],
            0.70,
            ROLLBACK_AVG,
        ),
        app(
            "vips",
            2.9,
            1.3,
            [8.0, 26.0, 21.0, 14.0, 10.0, 8.0, 6.0, 3.0, 4.0],
            0.70,
            ROLLBACK_AVG,
        ),
        app(
            "x264",
            2.3,
            1.0,
            [9.0, 24.0, 20.0, 15.0, 11.0, 8.0, 6.0, 3.0, 4.0],
            0.75,
            ROLLBACK_AVG,
        ),
        app(
            "raytrace",
            1.6,
            0.6,
            [10.0, 27.0, 20.0, 13.0, 10.0, 8.0, 6.0, 3.0, 3.0],
            0.45,
            ROLLBACK_AVG,
        ),
    ]
}

/// The STREAM kernel: sequential, write-heavy, near-full-line updates.
pub fn stream_app() -> AppProfile {
    app(
        "stream",
        12.0,
        8.0,
        [1.0, 4.0, 6.0, 8.0, 12.0, 18.0, 16.0, 14.0, 21.0],
        0.95,
        ROLLBACK_AVG,
    )
}

/// How a workload was assembled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// 8 threads of one PARSEC/STREAM program.
    MultiThreaded,
    /// 8 single-threaded SPEC programs (Table II mixes).
    MultiProgrammed,
    /// 8 copies of one SPEC program (Figures 1 and 2 characterization).
    SpecRate,
}

/// A complete 8-core workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (Table II naming).
    pub name: String,
    /// One profile per core.
    pub per_core: Vec<AppProfile>,
    /// Provenance.
    pub kind: WorkloadKind,
}

impl Workload {
    /// Builds an 8-thread multi-threaded workload from one program.
    pub fn multi_threaded(profile: AppProfile) -> Self {
        Self {
            name: profile.name.to_owned(),
            per_core: vec![profile; 8],
            kind: WorkloadKind::MultiThreaded,
        }
    }

    /// Builds a rate-mode workload: 8 copies of one SPEC program.
    pub fn spec_rate(profile: AppProfile) -> Self {
        Self {
            name: profile.name.to_owned(),
            per_core: vec![profile; 8],
            kind: WorkloadKind::SpecRate,
        }
    }

    /// Builds a multi-programmed mix of `2×` each of four programs, then
    /// rescales the per-core intensities so the aggregate RPKI/WPKI match
    /// Table II.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn mix(name: &str, apps: &[AppProfile], target_rpki: f64, target_wpki: f64) -> Self {
        assert!(!apps.is_empty(), "mix needs at least one program");
        let mut per_core = Vec::with_capacity(8);
        while per_core.len() < 8 {
            for a in apps {
                per_core.push(*a);
                per_core.push(*a);
                if per_core.len() >= 8 {
                    break;
                }
            }
        }
        per_core.truncate(8);
        let mean_r = per_core.iter().map(|p| p.rpki).sum::<f64>() / 8.0;
        let mean_w = per_core.iter().map(|p| p.wpki).sum::<f64>() / 8.0;
        for p in &mut per_core {
            p.rpki *= target_rpki / mean_r;
            p.wpki *= target_wpki / mean_w;
        }
        Self {
            name: name.to_owned(),
            per_core,
            kind: WorkloadKind::MultiProgrammed,
        }
    }

    /// Aggregate reads per kilo-instruction (mean over cores).
    pub fn rpki(&self) -> f64 {
        self.per_core.iter().map(|p| p.rpki).sum::<f64>() / self.per_core.len() as f64
    }

    /// Aggregate writes per kilo-instruction.
    pub fn wpki(&self) -> f64 {
        self.per_core.iter().map(|p| p.wpki).sum::<f64>() / self.per_core.len() as f64
    }

    /// The workload's consumed-before-check probability (worst core).
    pub fn rollback_p(&self) -> f64 {
        self.per_core
            .iter()
            .map(|p| p.rollback_p)
            .fold(0.0, f64::max)
    }

    /// Mean essential words per write-back, weighted by WPKI.
    pub fn mean_dirty_words(&self) -> f64 {
        let wsum: f64 = self.per_core.iter().map(|p| p.wpki).sum();
        if wsum == 0.0 {
            return 0.0;
        }
        self.per_core
            .iter()
            .map(|p| p.mean_dirty_words() * p.wpki)
            .sum::<f64>()
            / wsum
    }
}

/// The six Table II multi-threaded workloads.
pub fn mt_selected() -> Vec<Workload> {
    let parsec = parsec_apps();
    [
        "canneal",
        "dedup",
        "facesim",
        "fluidanimate",
        "freqmine",
        "streamcluster",
    ]
    .iter()
    .map(|n| {
        Workload::multi_threaded(
            *parsec
                .iter()
                .find(|p| p.name == *n)
                .expect("catalog program"),
        )
    })
    .collect()
}

/// All 13 PARSEC workloads (for Average(MT)).
pub fn mt_all() -> Vec<Workload> {
    parsec_apps()
        .into_iter()
        .map(Workload::multi_threaded)
        .collect()
}

/// The six Table II multi-programmed mixes with MP6's Table IV rollback
/// rate applied.
pub fn mp_workloads() -> Vec<Workload> {
    let spec = spec_apps();
    let get = |n: &str| *spec.iter().find(|p| p.name == n).expect("catalog program");
    let mut out = vec![
        Workload::mix(
            "MP1",
            &[get("mcf"), get("gemsFDTD"), get("astar"), get("sphinx3")],
            6.45,
            3.11,
        ),
        Workload::mix(
            "MP2",
            &[get("mcf"), get("gromacs"), get("gemsFDTD"), get("h264ref")],
            2.68,
            1.56,
        ),
        Workload::mix(
            "MP3",
            &[get("gromacs"), get("h264ref"), get("astar"), get("sphinx3")],
            2.31,
            1.08,
        ),
        Workload::mix("MP4", &[get("astar")], 8.05, 5.65),
        Workload::mix("MP5", &[get("gemsFDTD")], 4.15, 2.6),
        Workload::mix(
            "MP6",
            &[
                get("cactusADM"),
                get("soplex"),
                get("gemsFDTD"),
                get("astar"),
            ],
            5.09,
            2.09,
        ),
    ];
    // Table IV: MP6 shows 3.4 % consumed-before-check.
    for p in &mut out[5].per_core {
        p.rollback_p = 0.034;
    }
    out
}

/// Rate-mode SPEC workloads for Figures 1 and 2.
pub fn spec_rate_workloads() -> Vec<Workload> {
    spec_apps().into_iter().map(Workload::spec_rate).collect()
}

/// Finds any catalog workload (PARSEC program, `MPn` mix, SPEC program, or
/// `stream`) by name.
pub fn by_name(name: &str) -> Option<Workload> {
    mt_all()
        .into_iter()
        .chain(mp_workloads())
        .chain(spec_rate_workloads())
        .chain(std::iter::once(Workload::multi_threaded(stream_app())))
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_validates() {
        for p in spec_apps()
            .iter()
            .chain(parsec_apps().iter())
            .chain([stream_app()].iter())
        {
            p.validate();
        }
    }

    #[test]
    fn figure2_anchors_hold() {
        let spec = spec_apps();
        let cactus = spec.iter().find(|p| p.name == "cactusADM").unwrap();
        let omnet = spec.iter().find(|p| p.name == "omnetpp").unwrap();
        assert!((cactus.one_word_fraction() - 0.52).abs() < 0.001);
        assert!((omnet.one_word_fraction() - 0.14).abs() < 0.001);
    }

    #[test]
    fn catalog_average_matches_paper_shape() {
        // Paper: mean essential words ≈ 2.3–2.4; 14–52 % single-word;
        // most write-backs under 4 words.
        let apps: Vec<_> = spec_apps();
        let mean: f64 = apps.iter().map(|p| p.mean_dirty_words()).sum::<f64>() / apps.len() as f64;
        assert!((2.0..=2.9).contains(&mean), "mean essential words = {mean}");
        for p in &apps {
            let f = p.one_word_fraction();
            assert!((0.13..=0.53).contains(&f), "{}: 1-word = {f}", p.name);
        }
        let under4: f64 =
            apps.iter().map(|p| p.under_four_fraction()).sum::<f64>() / apps.len() as f64;
        assert!(under4 > 0.63, "under-4 fraction = {under4}");
    }

    #[test]
    fn table2_mt_values() {
        let mt = mt_selected();
        assert_eq!(mt.len(), 6);
        let canneal = &mt[0];
        assert!((canneal.rpki() - 15.19).abs() < 1e-9);
        assert!((canneal.wpki() - 7.13).abs() < 1e-9);
        assert_eq!(canneal.kind, WorkloadKind::MultiThreaded);
    }

    #[test]
    fn mp_mixes_match_table2_aggregates() {
        for (w, (r, p)) in mp_workloads().iter().zip([
            (6.45, 3.11),
            (2.68, 1.56),
            (2.31, 1.08),
            (8.05, 5.65),
            (4.15, 2.6),
            (5.09, 2.09),
        ]) {
            assert!((w.rpki() - r).abs() < 1e-6, "{}: rpki {}", w.name, w.rpki());
            assert!((w.wpki() - p).abs() < 1e-6, "{}: wpki {}", w.name, w.wpki());
            assert_eq!(w.per_core.len(), 8);
        }
    }

    #[test]
    fn table4_rollback_anchors() {
        assert!((by_name("canneal").unwrap().rollback_p() - 0.058).abs() < 1e-9);
        assert!((by_name("facesim").unwrap().rollback_p() - 0.041).abs() < 1e-9);
        assert!((by_name("ferret").unwrap().rollback_p() - 0.022).abs() < 1e-9);
        assert!((by_name("MP6").unwrap().rollback_p() - 0.034).abs() < 1e-9);
    }

    #[test]
    fn by_name_finds_all_namespaces() {
        assert!(by_name("canneal").is_some());
        assert!(by_name("mp3").is_some());
        assert!(by_name("cactusADM").is_some());
        assert!(by_name("stream").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn mix_replication_pattern() {
        let w = by_name("MP1").unwrap();
        let names: Vec<_> = w.per_core.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["mcf", "mcf", "gemsFDTD", "gemsFDTD", "astar", "astar", "sphinx3", "sphinx3"]
        );
    }
}
