//! Trace recording and replay.
//!
//! A [`Trace`] captures a core's op stream so experiments can be rerun
//! bit-identically, diffed across configurations, or exported for external
//! analysis. The text format is line-oriented and versioned:
//!
//! ```text
//! pcmap-trace v1
//! C 184          # retire 184 instructions
//! R 0x7f3a40     # read the line containing this address
//! W 0x9c80 2c    # write-back; hex mask of dirty words
//! ```

use crate::generator::{CoreStream, StreamOp};
use pcmap_types::{PhysAddr, WordMask};
use std::fmt::Write as _;
use std::str::FromStr;

/// A recorded op stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    ops: Vec<StreamOp>,
}

/// Errors from parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: &'static str,
}

impl core::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` ops from a generator.
    pub fn record(gen: &mut CoreStream, n: usize) -> Self {
        Self {
            ops: (0..n).map(|_| gen.next_op()).collect(),
        }
    }

    /// Appends one op.
    pub fn push(&mut self, op: StreamOp) {
        self.ops.push(op);
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[StreamOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the recorded ops (replay).
    pub fn iter(&self) -> impl Iterator<Item = &StreamOp> {
        self.ops.iter()
    }

    /// Total memory operations (reads + writes) in the trace.
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| !matches!(o, StreamOp::Compute(_)))
            .count()
    }

    /// Serializes to the versioned text format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("pcmap-trace v1\n");
        for op in &self.ops {
            match op {
                StreamOp::Compute(n) => {
                    let _ = writeln!(out, "C {n}");
                }
                StreamOp::Read(a) => {
                    let _ = writeln!(out, "R 0x{:x}", a.0);
                }
                StreamOp::Write { addr, dirty } => {
                    let _ = writeln!(out, "W 0x{:x} {:02x}", addr.0, dirty.bits());
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`Trace::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on a bad header, unknown record tag, or
    /// malformed field.
    pub fn deserialize(text: &str) -> Result<Self, ParseTraceError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == "pcmap-trace v1" => {}
            _ => {
                return Err(ParseTraceError {
                    line: 1,
                    reason: "missing or unknown header",
                })
            }
        }
        let mut ops = Vec::new();
        for (idx, line) in lines {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let tag = parts.next().unwrap_or("");
            let err = |reason| ParseTraceError {
                line: idx + 1,
                reason,
            };
            match tag {
                "C" => {
                    let n = parts
                        .next()
                        .and_then(|v| u64::from_str(v).ok())
                        .ok_or(err("bad compute count"))?;
                    ops.push(StreamOp::Compute(n));
                }
                "R" => {
                    let a = parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or(err("bad read address"))?;
                    ops.push(StreamOp::Read(PhysAddr::new(a)));
                }
                "W" => {
                    let a = parts
                        .next()
                        .and_then(parse_hex)
                        .ok_or(err("bad write address"))?;
                    let mask = parts
                        .next()
                        .and_then(|v| u16::from_str_radix(v, 16).ok())
                        .ok_or(err("bad dirty mask"))?;
                    ops.push(StreamOp::Write {
                        addr: PhysAddr::new(a),
                        dirty: WordMask::from_bits(mask),
                    });
                }
                _ => return Err(err("unknown record tag")),
            }
        }
        Ok(Self { ops })
    }
}

fn parse_hex(v: &str) -> Option<u64> {
    u64::from_str_radix(v.strip_prefix("0x")?, 16).ok()
}

impl FromIterator<StreamOp> for Trace {
    fn from_iter<I: IntoIterator<Item = StreamOp>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn sample() -> Trace {
        let wl = catalog::by_name("canneal").expect("catalog workload");
        let mut gen = CoreStream::new(&wl.per_core[0], 0, 31);
        Trace::record(&mut gen, 500)
    }

    #[test]
    fn record_captures_requested_count() {
        let t = sample();
        assert_eq!(t.len(), 500);
        assert!(t.mem_ops() > 0);
        assert!(!t.is_empty());
    }

    #[test]
    fn serialize_round_trip() {
        let t = sample();
        let text = t.serialize();
        let back = Trace::deserialize(&text).expect("round trip");
        assert_eq!(back, t);
    }

    #[test]
    fn deserialize_rejects_bad_header() {
        assert!(Trace::deserialize("not-a-trace\nC 5").is_err());
    }

    #[test]
    fn deserialize_rejects_garbage_records() {
        let e = Trace::deserialize("pcmap-trace v1\nX 1 2 3").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(Trace::deserialize("pcmap-trace v1\nW zz 01").is_err());
        assert!(Trace::deserialize("pcmap-trace v1\nC notanumber").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "pcmap-trace v1\n\n# a comment\nC 10  # inline\nR 0x40\n";
        let t = Trace::deserialize(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[1], StreamOp::Read(PhysAddr::new(0x40)));
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = vec![StreamOp::Compute(3), StreamOp::Read(PhysAddr::new(64))]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.mem_ops(), 1);
    }
}
