//! Stochastic per-core request stream generation.

use crate::profile::AppProfile;
use pcmap_types::{PhysAddr, WordMask, Xoshiro256, LINE_BYTES};

/// One event in a core's op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Retire this many non-memory instructions before the next event.
    Compute(u64),
    /// A PCM read (LLC miss) of the line containing the address.
    Read(PhysAddr),
    /// A PCM write-back with the given essential-word mask (the simulator
    /// fabricates line contents that differ from storage in exactly these
    /// words; an empty mask is a silent store).
    Write {
        /// Line-aligned target address.
        addr: PhysAddr,
        /// Words to modify (empty ⇒ silent store).
        dirty: WordMask,
    },
}

/// A deterministic generator of one core's post-LLC request stream,
/// following an [`AppProfile`].
///
/// The address stream alternates sequential runs (length governed by
/// `row_locality`) with uniform jumps inside the core's private slice of
/// the footprint; write-backs draw their essential-word count from the
/// profile's histogram and reuse the previous offsets with probability
/// `offset_corr` (contiguous word runs, as real write-backs cluster).
#[derive(Debug, Clone)]
pub struct CoreStream {
    profile: AppProfile,
    rng: Xoshiro256,
    /// Current line pointer within the footprint.
    cursor: u64,
    /// Start word of the previous write-back's dirty run.
    last_start: usize,
    last_count: usize,
    /// Byte offset isolating this core's address slice.
    base: u64,
    /// Alternation state: a generated compute gap is followed by one
    /// memory op.
    pending_mem: Option<StreamOp>,
    /// Two-state burstiness: `true` while in a dense burst phase.
    hot: bool,
    ops_emitted: u64,
    reads_emitted: u64,
    writes_emitted: u64,
}

impl CoreStream {
    /// Creates a stream for `profile`, isolated in the address-space slice
    /// for `core_index`, seeded deterministically.
    pub fn new(profile: &AppProfile, core_index: usize, seed: u64) -> Self {
        profile.validate();
        Self {
            profile: *profile,
            rng: Xoshiro256::new(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add(core_index as u64),
            ),
            cursor: 0,
            last_start: 0,
            last_count: 1,
            // 1 GiB per core keeps per-core slices disjoint in an 8 GB space.
            base: (core_index as u64) << 30,
            pending_mem: None,
            hot: true,
            ops_emitted: 0,
            reads_emitted: 0,
            writes_emitted: 0,
        }
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// (reads, writes) emitted so far.
    pub fn emitted(&self) -> (u64, u64) {
        (self.reads_emitted, self.writes_emitted)
    }

    /// Produces the next stream event. Alternates `Compute(gap)` events
    /// with memory ops so that the long-run RPKI/WPKI match the profile.
    pub fn next_op(&mut self) -> StreamOp {
        if let Some(op) = self.pending_mem.take() {
            self.ops_emitted += 1;
            return op;
        }
        // Mean instructions per memory op, modulated by a two-state
        // burst process: post-LLC traffic arrives in dense episodes (bulk
        // DRAM-cache misses and eviction trains) separated by quiet
        // stretches. 80% of ops fall in a hot phase at 4x density, 20% in
        // a cold phase at 4x sparsity — the long-run RPKI/WPKI are
        // preserved exactly (0.8/4 + 0.2*4 = 1).
        if self.rng.chance(if self.hot { 0.02 } else { 0.08 }) {
            self.hot = !self.hot;
        }
        let per_kilo = self.profile.rpki + self.profile.wpki;
        let base_gap = (1000.0 / per_kilo).max(1.0);
        let mean_gap = if self.hot {
            (base_gap / 4.0).max(1.0)
        } else {
            base_gap * 4.0
        };
        let p = 1.0 / mean_gap;
        let gap = self.rng.geometric(p, (mean_gap * 50.0) as u64).max(1);

        let is_read = self.rng.next_f64() * per_kilo < self.profile.rpki;
        let addr = self.next_addr();
        let op = if is_read {
            self.reads_emitted += 1;
            StreamOp::Read(addr)
        } else {
            self.writes_emitted += 1;
            StreamOp::Write {
                addr,
                dirty: self.next_dirty_mask(),
            }
        };
        self.pending_mem = Some(op);
        StreamOp::Compute(gap)
    }

    fn next_addr(&mut self) -> PhysAddr {
        if self.rng.chance(self.profile.row_locality) {
            self.cursor = (self.cursor + 1) % self.profile.footprint_lines;
        } else {
            self.cursor = self.rng.next_below(self.profile.footprint_lines);
        }
        PhysAddr::new(self.base + self.cursor * LINE_BYTES as u64)
    }

    fn next_dirty_mask(&mut self) -> WordMask {
        let count = self.rng.sample_weighted(&self.profile.dirty_hist);
        if count == 0 {
            return WordMask::empty();
        }
        let start = if self.rng.chance(self.profile.offset_corr) {
            self.last_start
        } else {
            self.rng.next_below(8) as usize
        };
        self.last_start = start;
        self.last_count = count;
        // Contiguous run of `count` words starting at `start`, wrapping.
        (0..count).map(|k| (start + k) % 8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile {
            name: "test",
            rpki: 6.0,
            wpki: 3.0,
            dirty_hist: [5.0, 40.0, 20.0, 10.0, 10.0, 6.0, 4.0, 2.0, 3.0],
            row_locality: 0.6,
            offset_corr: 0.32,
            footprint_lines: 4096,
            rollback_p: 0.01,
        }
    }

    fn collect_ops(n: usize) -> Vec<StreamOp> {
        let mut g = CoreStream::new(&profile(), 0, 7);
        (0..n).map(|_| g.next_op()).collect()
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = collect_ops(1000);
        let mut g = CoreStream::new(&profile(), 0, 7);
        let b: Vec<_> = (0..1000).map(|_| g.next_op()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cores_use_disjoint_address_slices() {
        let mut g0 = CoreStream::new(&profile(), 0, 7);
        let mut g1 = CoreStream::new(&profile(), 1, 7);
        for _ in 0..200 {
            if let StreamOp::Read(a) = g0.next_op() {
                assert!(a.0 < 1 << 30);
            }
            if let StreamOp::Read(a) = g1.next_op() {
                assert!(a.0 >= 1 << 30 && a.0 < 2 << 30);
            }
        }
    }

    #[test]
    fn compute_alternates_with_memory_ops() {
        let ops = collect_ops(100);
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], StreamOp::Compute(_)));
            if pair.len() == 2 {
                assert!(!matches!(pair[1], StreamOp::Compute(_)));
            }
        }
    }

    #[test]
    fn long_run_rates_match_rpki_wpki() {
        let mut g = CoreStream::new(&profile(), 0, 11);
        let (mut insts, mut reads, mut writes) = (0u64, 0u64, 0u64);
        while insts < 2_000_000 {
            match g.next_op() {
                StreamOp::Compute(n) => insts += n,
                StreamOp::Read(_) => {
                    reads += 1;
                    insts += 1;
                }
                StreamOp::Write { .. } => {
                    writes += 1;
                    insts += 1;
                }
            }
        }
        let rpki = reads as f64 * 1000.0 / insts as f64;
        let wpki = writes as f64 * 1000.0 / insts as f64;
        assert!((rpki - 6.0).abs() < 0.6, "rpki = {rpki}");
        assert!((wpki - 3.0).abs() < 0.4, "wpki = {wpki}");
    }

    #[test]
    fn dirty_mask_distribution_tracks_histogram() {
        let mut g = CoreStream::new(&profile(), 0, 13);
        let mut hist = [0u64; 9];
        let mut writes = 0;
        while writes < 50_000 {
            if let StreamOp::Write { dirty, .. } = g.next_op() {
                hist[dirty.count()] += 1;
                writes += 1;
            }
        }
        let one_word = hist[1] as f64 / writes as f64;
        assert!(
            (one_word - 0.40).abs() < 0.02,
            "1-word fraction = {one_word}"
        );
        let silent = hist[0] as f64 / writes as f64;
        assert!((silent - 0.05).abs() < 0.01, "silent fraction = {silent}");
    }

    #[test]
    fn dirty_masks_are_contiguous_runs() {
        let mut g = CoreStream::new(&profile(), 0, 17);
        let mut seen = 0;
        while seen < 1000 {
            if let StreamOp::Write { dirty, .. } = g.next_op() {
                let k = dirty.count();
                if k > 0 {
                    // A wrapped contiguous run of k words has the property
                    // that rotating the mask so its start is at 0 yields
                    // bits 0..k. Verify by checking some rotation matches.
                    let bits = dirty.bits();
                    let target = (1u16 << k) - 1;
                    let ok = (0..8).any(|r| {
                        let rot = ((bits >> r) | (bits << (8 - r))) & 0xff;
                        rot == target
                    });
                    assert!(ok, "mask {dirty:?} is not a contiguous run");
                }
                seen += 1;
            }
        }
    }

    #[test]
    fn offset_correlation_repeats_starts() {
        let mut p = profile();
        p.offset_corr = 1.0;
        p.dirty_hist = [0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]; // always 1 word
        let mut g = CoreStream::new(&p, 0, 19);
        let mut offsets = Vec::new();
        while offsets.len() < 50 {
            if let StreamOp::Write { dirty, .. } = g.next_op() {
                offsets.push(dirty.first().unwrap());
            }
        }
        assert!(
            offsets.windows(2).all(|w| w[0] == w[1]),
            "all starts identical"
        );
    }

    #[test]
    fn row_locality_produces_sequential_runs() {
        let mut p = profile();
        p.row_locality = 1.0;
        let mut g = CoreStream::new(&p, 0, 23);
        let mut prev: Option<u64> = None;
        let mut sequential = 0;
        let mut total = 0;
        for _ in 0..400 {
            let addr = match g.next_op() {
                StreamOp::Read(a) => a,
                StreamOp::Write { addr, .. } => addr,
                StreamOp::Compute(_) => continue,
            };
            if let Some(p0) = prev {
                total += 1;
                if addr.0 == p0 + 64 {
                    sequential += 1;
                }
            }
            prev = Some(addr.0);
        }
        assert!(sequential as f64 / total as f64 > 0.95);
    }
}
