//! The RoW rollback cost model (§IV-B3 and Table IV of the paper).
//!
//! A RoW read hands data to the CPU before its deferred SECDED check. If
//! the CPU *consumes* the line before the check completes and the data
//! turns out faulty, the pipeline must squash back to that point. The paper
//! measures the fraction of RoW reads consumed-before-check per workload
//! (1.3 % on average, up to 5.8 % for canneal) and bounds the cost by
//! comparing an *always-faulty* system (every consumed-before-check read
//! rolls back) against a *none-faulty* one (no rollback ever).

use pcmap_types::{Cycle, Xoshiro256};

/// Two corruption rollbacks within this many memory cycles of each other
/// belong to the same *storm* — a burst of squashes from one noisy rank
/// that the degradation machinery is expected to cut short.
pub const STORM_WINDOW: u64 = 1024;

/// Decides which RoW reads incur a rollback.
#[derive(Debug, Clone)]
pub struct RollbackModel {
    /// Probability that a RoW read is consumed before its deferred check.
    consumed_p: f64,
    /// Whether consumed-before-check reads are charged (the "faulty
    /// system" bound) or not ("none-faulty").
    always_faulty: bool,
    /// Squash + refetch penalty in CPU cycles.
    penalty_cpu: u64,
    rng: Xoshiro256,
    row_reads: u64,
    consumed_before_check: u64,
    /// Rollbacks forced by injected corruption (deferred check found the
    /// consumed line genuinely bad) — distinct from the probabilistic
    /// consumed-before-check accounting above.
    corruption_rollbacks: u64,
    last_corruption: Option<Cycle>,
    storm_len: u64,
    longest_storm: u64,
}

impl RollbackModel {
    /// Creates a model.
    ///
    /// `consumed_p` is the workload's consumed-before-check probability,
    /// clamped to `[0, 1]`.
    pub fn new(consumed_p: f64, always_faulty: bool, penalty_cpu: u64, seed: u64) -> Self {
        Self {
            consumed_p: consumed_p.clamp(0.0, 1.0),
            always_faulty,
            penalty_cpu,
            rng: Xoshiro256::new(seed ^ 0x5ca1_ab1e),
            row_reads: 0,
            consumed_before_check: 0,
            corruption_rollbacks: 0,
            last_corruption: None,
            storm_len: 0,
            longest_storm: 0,
        }
    }

    /// Registers a completed RoW read with a deferred check at
    /// `verify_done`; returns `Some((squash_at, penalty_cpu))` if the read
    /// must roll back.
    pub fn on_row_read(&mut self, verify_done: Cycle) -> Option<(Cycle, u64)> {
        self.row_reads += 1;
        let consumed = self.rng.chance(self.consumed_p);
        if consumed {
            self.consumed_before_check += 1;
            if self.always_faulty {
                return Some((verify_done, self.penalty_cpu));
            }
        }
        None
    }

    /// Registers a corruption discovered by a deferred check at `at`: the
    /// CPU consumed data that really was bad, so the squash is
    /// unconditional — no consumed-before-check coin flip. Draw-free by
    /// design (never advances the RNG), so wiring this path in leaves
    /// fault-free runs bit-identical.
    ///
    /// Returns `(squash_at, penalty_cpu)`.
    pub fn on_corruption(&mut self, at: Cycle) -> (Cycle, u64) {
        self.corruption_rollbacks += 1;
        let in_storm = self
            .last_corruption
            .is_some_and(|prev| at.0.saturating_sub(prev.0) <= STORM_WINDOW);
        self.storm_len = if in_storm { self.storm_len + 1 } else { 1 };
        self.longest_storm = self.longest_storm.max(self.storm_len);
        self.last_corruption = Some(at);
        (at, self.penalty_cpu)
    }

    /// Rollbacks forced by real (injected) corruption.
    pub fn corruption_rollbacks(&self) -> u64 {
        self.corruption_rollbacks
    }

    /// Length of the longest run of corruption rollbacks spaced at most
    /// [`STORM_WINDOW`] memory cycles apart.
    pub fn longest_storm(&self) -> u64 {
        self.longest_storm
    }

    /// RoW reads observed.
    pub fn row_reads(&self) -> u64 {
        self.row_reads
    }

    /// Fraction of RoW reads consumed before their check (the paper's "%
    /// of max rollbacks" metric).
    pub fn consumed_fraction(&self) -> f64 {
        if self.row_reads == 0 {
            0.0
        } else {
            self.consumed_before_check as f64 / self.row_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_faulty_never_rolls_back() {
        let mut m = RollbackModel::new(1.0, false, 128, 1);
        for _ in 0..100 {
            assert!(m.on_row_read(Cycle(10)).is_none());
        }
        assert_eq!(m.consumed_fraction(), 1.0);
    }

    #[test]
    fn always_faulty_rolls_back_consumed_reads() {
        let mut m = RollbackModel::new(1.0, true, 128, 1);
        let (at, pen) = m.on_row_read(Cycle(77)).expect("must roll back");
        assert_eq!(at, Cycle(77));
        assert_eq!(pen, 128);
    }

    #[test]
    fn consumed_fraction_tracks_probability() {
        let mut m = RollbackModel::new(0.058, true, 128, 42);
        let mut rollbacks = 0;
        for _ in 0..20_000 {
            if m.on_row_read(Cycle(1)).is_some() {
                rollbacks += 1;
            }
        }
        let frac = rollbacks as f64 / 20_000.0;
        assert!((frac - 0.058).abs() < 0.01, "frac = {frac}");
        assert!((m.consumed_fraction() - frac).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_is_clean() {
        let mut m = RollbackModel::new(0.0, true, 128, 3);
        for _ in 0..1000 {
            assert!(m.on_row_read(Cycle(5)).is_none());
        }
        assert_eq!(m.consumed_fraction(), 0.0);
    }

    #[test]
    fn probability_is_clamped() {
        let m = RollbackModel::new(7.5, true, 128, 3);
        assert_eq!(m.consumed_p, 1.0);
    }

    #[test]
    fn corruption_rollback_is_unconditional_and_draw_free() {
        // consumed_p = 0 would never roll back probabilistically; the
        // corruption path must squash anyway, without touching the RNG.
        let mut m = RollbackModel::new(0.0, false, 64, 9);
        let mut twin = m.clone();
        let (at, pen) = m.on_corruption(Cycle(300));
        assert_eq!((at, pen), (Cycle(300), 64));
        assert_eq!(m.corruption_rollbacks(), 1);
        // The RNG streams stay in lockstep after the corruption.
        for _ in 0..50 {
            assert_eq!(m.on_row_read(Cycle(5)), twin.on_row_read(Cycle(5)));
        }
    }

    #[test]
    fn zero_depth_rollback_counts_but_charges_nothing() {
        use crate::core_model::CoreModel;
        use pcmap_types::{CoreId, CpuParams};
        let mut m = RollbackModel::new(0.0, false, 0, 1);
        let (at, pen) = m.on_corruption(Cycle(10));
        assert_eq!(pen, 0, "zero-penalty model must charge zero cycles");
        let mut core = CoreModel::new(CoreId(0), &CpuParams::paper_default());
        let before = core.now();
        core.rollback(at.0.min(before), pen);
        assert_eq!(core.stats().rollbacks, 1);
        assert_eq!(core.stats().rollback_cycles, 0);
        assert_eq!(core.now(), before, "zero-depth rollback must not move time");
    }

    #[test]
    fn nested_rollbacks_serialize_their_penalties() {
        use crate::core_model::CoreModel;
        use pcmap_types::{CoreId, CpuParams};
        // Two squashes landing at the same instant (a rollback arriving
        // while the previous penalty is still being paid) must pay both
        // penalties back to back, never overlap them.
        let mut core = CoreModel::new(CoreId(0), &CpuParams::paper_default());
        core.rollback(100, 128);
        let after_first = core.now();
        assert!(after_first >= 228);
        core.rollback(100, 128);
        assert_eq!(core.now(), after_first + 128);
        assert_eq!(core.stats().rollbacks, 2);
        assert_eq!(core.stats().rollback_cycles, 256);
    }

    #[test]
    fn storm_accounting_tracks_bursts_and_resets_on_gaps() {
        let mut m = RollbackModel::new(0.0, false, 64, 2);
        // Burst of three corruptions inside the storm window.
        m.on_corruption(Cycle(100));
        m.on_corruption(Cycle(100 + STORM_WINDOW / 2));
        m.on_corruption(Cycle(100 + STORM_WINDOW));
        assert_eq!(m.longest_storm(), 3);
        // A gap wider than the window starts a fresh storm.
        m.on_corruption(Cycle(100 + 3 * STORM_WINDOW));
        m.on_corruption(Cycle(101 + 3 * STORM_WINDOW));
        assert_eq!(m.longest_storm(), 3, "shorter storm must not raise peak");
        assert_eq!(m.corruption_rollbacks(), 5);
    }
}
