//! The RoW rollback cost model (§IV-B3 and Table IV of the paper).
//!
//! A RoW read hands data to the CPU before its deferred SECDED check. If
//! the CPU *consumes* the line before the check completes and the data
//! turns out faulty, the pipeline must squash back to that point. The paper
//! measures the fraction of RoW reads consumed-before-check per workload
//! (1.3 % on average, up to 5.8 % for canneal) and bounds the cost by
//! comparing an *always-faulty* system (every consumed-before-check read
//! rolls back) against a *none-faulty* one (no rollback ever).

use pcmap_types::{Cycle, Xoshiro256};

/// Decides which RoW reads incur a rollback.
#[derive(Debug, Clone)]
pub struct RollbackModel {
    /// Probability that a RoW read is consumed before its deferred check.
    consumed_p: f64,
    /// Whether consumed-before-check reads are charged (the "faulty
    /// system" bound) or not ("none-faulty").
    always_faulty: bool,
    /// Squash + refetch penalty in CPU cycles.
    penalty_cpu: u64,
    rng: Xoshiro256,
    row_reads: u64,
    consumed_before_check: u64,
}

impl RollbackModel {
    /// Creates a model.
    ///
    /// `consumed_p` is the workload's consumed-before-check probability,
    /// clamped to `[0, 1]`.
    pub fn new(consumed_p: f64, always_faulty: bool, penalty_cpu: u64, seed: u64) -> Self {
        Self {
            consumed_p: consumed_p.clamp(0.0, 1.0),
            always_faulty,
            penalty_cpu,
            rng: Xoshiro256::new(seed ^ 0x5ca1_ab1e),
            row_reads: 0,
            consumed_before_check: 0,
        }
    }

    /// Registers a completed RoW read with a deferred check at
    /// `verify_done`; returns `Some((squash_at, penalty_cpu))` if the read
    /// must roll back.
    pub fn on_row_read(&mut self, verify_done: Cycle) -> Option<(Cycle, u64)> {
        self.row_reads += 1;
        let consumed = self.rng.chance(self.consumed_p);
        if consumed {
            self.consumed_before_check += 1;
            if self.always_faulty {
                return Some((verify_done, self.penalty_cpu));
            }
        }
        None
    }

    /// RoW reads observed.
    pub fn row_reads(&self) -> u64 {
        self.row_reads
    }

    /// Fraction of RoW reads consumed before their check (the paper's "%
    /// of max rollbacks" metric).
    pub fn consumed_fraction(&self) -> f64 {
        if self.row_reads == 0 {
            0.0
        } else {
            self.consumed_before_check as f64 / self.row_reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_faulty_never_rolls_back() {
        let mut m = RollbackModel::new(1.0, false, 128, 1);
        for _ in 0..100 {
            assert!(m.on_row_read(Cycle(10)).is_none());
        }
        assert_eq!(m.consumed_fraction(), 1.0);
    }

    #[test]
    fn always_faulty_rolls_back_consumed_reads() {
        let mut m = RollbackModel::new(1.0, true, 128, 1);
        let (at, pen) = m.on_row_read(Cycle(77)).expect("must roll back");
        assert_eq!(at, Cycle(77));
        assert_eq!(pen, 128);
    }

    #[test]
    fn consumed_fraction_tracks_probability() {
        let mut m = RollbackModel::new(0.058, true, 128, 42);
        let mut rollbacks = 0;
        for _ in 0..20_000 {
            if m.on_row_read(Cycle(1)).is_some() {
                rollbacks += 1;
            }
        }
        let frac = rollbacks as f64 / 20_000.0;
        assert!((frac - 0.058).abs() < 0.01, "frac = {frac}");
        assert!((m.consumed_fraction() - frac).abs() < 1e-12);
    }

    #[test]
    fn zero_probability_is_clean() {
        let mut m = RollbackModel::new(0.0, true, 128, 3);
        for _ in 0..1000 {
            assert!(m.on_row_read(Cycle(5)).is_none());
        }
        assert_eq!(m.consumed_fraction(), 0.0);
    }

    #[test]
    fn probability_is_clamped() {
        let m = RollbackModel::new(7.5, true, 128, 3);
        assert_eq!(m.consumed_p, 1.0);
    }
}
