//! CPU substrate for the PCMap simulator.
//!
//! The paper evaluates PCMap under Gem5's out-of-order cores; this crate
//! provides the substitute described in DESIGN.md:
//!
//! - [`CoreModel`] — a stall-accounting core: instructions retire at one
//!   per CPU cycle, reads overlap up to an MLP window and stall the core
//!   when the window fills, writes post to the memory controller with
//!   back-pressure. IPC differences between memory systems come exactly
//!   from memory stall time, which is the quantity PCMap changes.
//! - [`Cache`] / [`Hierarchy`] — a real write-back cache hierarchy with
//!   **per-word dirty masks**, used by the functional examples and tests to
//!   produce organic essential-word distributions (as opposed to the
//!   calibrated synthetic ones in `pcmap-workloads`).
//! - [`RollbackModel`] — the Table IV cost model for RoW's deferred
//!   verification: in the worst-case "always-faulty" accounting, every RoW
//!   read consumed before its check triggers a pipeline squash.

#![warn(missing_docs)]

pub mod cache;
pub mod core_model;
pub mod hierarchy;
pub mod rollback;

pub use cache::{AccessKind, Cache, CacheConfig, Eviction};
pub use core_model::{CoreModel, CoreStats, WorkOp};
pub use hierarchy::{Hierarchy, HierarchyConfig, MemAccess};
pub use rollback::RollbackModel;
