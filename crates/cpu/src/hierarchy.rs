//! A three-level cache hierarchy producing post-LLC PCM traffic.
//!
//! Mirrors Table I's structure functionally: a small private L1, a shared
//! L2 and a large DRAM cache acting as the last-level cache in front of PCM
//! main memory. Accesses percolate down on misses; dirty evictions
//! percolate toward memory, carrying their per-word dirty masks. The
//! hierarchy is functional (hit/miss and data correctness) — timing for the
//! headline experiments comes from the calibrated workload models, while
//! this path demonstrates organic essential-word behaviour end to end.

use crate::cache::{AccessKind, Cache, CacheConfig, Eviction};
use pcmap_types::{CacheLine, PhysAddr};

/// Geometry of the three levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 (Table I: 32 KB ⇒ 256 sets × 2 ways with 64 B lines).
    pub l1: CacheConfig,
    /// Shared L2 (8 MB in the paper; scaled down in examples).
    pub l2: CacheConfig,
    /// DRAM cache LLC (256 MB in the paper; scaled down in examples).
    pub llc: CacheConfig,
}

impl HierarchyConfig {
    /// A scaled-down hierarchy for tests and examples (same shape, smaller
    /// capacities so evictions actually happen in short runs).
    pub fn small() -> Self {
        Self {
            l1: CacheConfig { sets: 64, ways: 2 },
            l2: CacheConfig { sets: 256, ways: 4 },
            llc: CacheConfig {
                sets: 1024,
                ways: 8,
            },
        }
    }
}

/// A memory-bound access emitted below the LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess {
    /// Fetch a line from PCM.
    Fetch(PhysAddr),
    /// Write a line back to PCM with the words dirtied while cached.
    WriteBack(Eviction),
}

/// The L1→L2→LLC hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
        }
    }

    /// Performs a load or store of the word containing `addr`.
    ///
    /// `fetch` supplies line contents from main memory when the access
    /// misses all three levels. Returns the PCM traffic generated (fetches
    /// and write-backs, in order).
    pub fn access<F>(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        value: Option<u64>,
        mut fetch: F,
    ) -> Vec<MemAccess>
    where
        F: FnMut(PhysAddr) -> CacheLine,
    {
        let mut traffic = Vec::new();
        let r1 = self.l1.access(addr, kind, value);
        if r1.hit {
            return traffic;
        }
        // L1 miss: dirty L1 victims land in L2.
        if let Some(ev) = r1.eviction {
            self.push_down_to_l2(ev, &mut traffic, &mut fetch);
        }
        // Look up L2 for the missing line.
        let r2 = self.l2.access(addr, AccessKind::Read, None);
        let line = if r2.hit {
            self.l2_line(addr)
        } else {
            if let Some(ev) = r2.eviction {
                self.push_down_to_llc(ev, &mut traffic, &mut fetch);
            }
            let r3 = self.llc.access(addr, AccessKind::Read, None);
            let line = if r3.hit {
                self.llc_line(addr)
            } else {
                if let Some(ev) = r3.eviction {
                    traffic.push(MemAccess::WriteBack(ev));
                }
                traffic.push(MemAccess::Fetch(addr.line().base()));
                let data = fetch(addr.line().base());
                self.llc.fill(addr, data);
                data
            };
            self.l2.fill(addr, line);
            line
        };
        self.l1.fill(addr, line);
        traffic
    }

    fn l2_line(&self, addr: PhysAddr) -> CacheLine {
        let mut line = CacheLine::zeroed();
        for w in 0..8 {
            let a = PhysAddr::new(addr.line().base().0 + (w as u64) * 8);
            line.set_word(w, self.l2.peek_word(a).unwrap_or(0));
        }
        line
    }

    fn llc_line(&self, addr: PhysAddr) -> CacheLine {
        let mut line = CacheLine::zeroed();
        for w in 0..8 {
            let a = PhysAddr::new(addr.line().base().0 + (w as u64) * 8);
            line.set_word(w, self.llc.peek_word(a).unwrap_or(0));
        }
        line
    }

    fn push_down_to_l2<F>(&mut self, ev: Eviction, traffic: &mut Vec<MemAccess>, fetch: &mut F)
    where
        F: FnMut(PhysAddr) -> CacheLine,
    {
        // Install the victim line in L2, merging its dirty words.
        let r = self.l2.access(ev.addr, AccessKind::Read, None);
        if !r.hit {
            if let Some(deeper) = r.eviction {
                self.push_down_to_llc(deeper, traffic, fetch);
            }
            // L2 must hold the full line; get it from LLC/memory.
            let base = self.line_from_llc_or_mem(ev.addr, traffic, fetch);
            self.l2.fill(ev.addr, base);
        }
        // Merge dirty words by re-writing them.
        for w in ev.dirty.iter() {
            let a = PhysAddr::new(ev.addr.line().base().0 + (w as u64) * 8);
            self.l2.access(a, AccessKind::Write, Some(ev.data.word(w)));
        }
    }

    fn push_down_to_llc<F>(&mut self, ev: Eviction, traffic: &mut Vec<MemAccess>, fetch: &mut F)
    where
        F: FnMut(PhysAddr) -> CacheLine,
    {
        let r = self.llc.access(ev.addr, AccessKind::Read, None);
        if !r.hit {
            if let Some(deeper) = r.eviction {
                traffic.push(MemAccess::WriteBack(deeper));
            }
            traffic.push(MemAccess::Fetch(ev.addr.line().base()));
            let data = fetch(ev.addr.line().base());
            self.llc.fill(ev.addr, data);
        }
        for w in ev.dirty.iter() {
            let a = PhysAddr::new(ev.addr.line().base().0 + (w as u64) * 8);
            self.llc.access(a, AccessKind::Write, Some(ev.data.word(w)));
        }
    }

    fn line_from_llc_or_mem<F>(
        &mut self,
        addr: PhysAddr,
        traffic: &mut Vec<MemAccess>,
        fetch: &mut F,
    ) -> CacheLine
    where
        F: FnMut(PhysAddr) -> CacheLine,
    {
        let r = self.llc.access(addr, AccessKind::Read, None);
        if r.hit {
            self.llc_line(addr)
        } else {
            if let Some(ev) = r.eviction {
                traffic.push(MemAccess::WriteBack(ev));
            }
            traffic.push(MemAccess::Fetch(addr.line().base()));
            let data = fetch(addr.line().base());
            self.llc.fill(addr, data);
            data
        }
    }

    /// Flushes all levels toward memory, returning every surviving dirty
    /// line as a write-back (with merged dirty masks).
    pub fn flush(&mut self) -> Vec<Eviction> {
        // Drain L1 into L2, L2 into LLC, then flush LLC.
        let mut dummy = Vec::new();
        for ev in self.l1.flush() {
            self.push_down_to_l2(ev, &mut dummy, &mut |a| {
                // During a flush the line is guaranteed resident below or
                // clean; fabricate zeros only if truly absent.
                let _ = a;
                CacheLine::zeroed()
            });
        }
        for ev in self.l2.flush() {
            self.push_down_to_llc(ev, &mut dummy, &mut |_| CacheLine::zeroed());
        }
        let mut out: Vec<Eviction> = self.llc.flush();
        out.extend(dummy.into_iter().filter_map(|m| match m {
            MemAccess::WriteBack(e) => Some(e),
            MemAccess::Fetch(_) => None,
        }));
        out
    }

    /// (hits, misses) per level: L1, L2, LLC.
    pub fn hit_miss(&self) -> [(u64, u64); 3] {
        [self.l1.hit_miss(), self.l2.hit_miss(), self.llc.hit_miss()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcmap_types::LINE_BYTES;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig { sets: 2, ways: 1 },
            l2: CacheConfig { sets: 4, ways: 1 },
            llc: CacheConfig { sets: 8, ways: 2 },
        })
    }

    fn backing(addr: PhysAddr) -> CacheLine {
        CacheLine::from_seed(addr.line().0)
    }

    #[test]
    fn first_access_fetches_from_memory() {
        let mut h = tiny();
        let traffic = h.access(PhysAddr::new(0), AccessKind::Read, None, backing);
        assert!(traffic
            .iter()
            .any(|t| matches!(t, MemAccess::Fetch(a) if a.0 == 0)));
        // Second access hits L1: no traffic.
        let t2 = h.access(PhysAddr::new(8), AccessKind::Read, None, backing);
        assert!(t2.is_empty());
    }

    #[test]
    fn read_returns_memory_contents_through_all_levels() {
        let mut h = tiny();
        let addr = PhysAddr::new(3 * LINE_BYTES as u64 + 16);
        h.access(addr, AccessKind::Read, None, backing);
        // The L1 now holds the true memory word.
        // (peek via a hitting read path: write nothing, check word value)
        let expect = backing(addr).word(2);
        let again = h.access(addr, AccessKind::Read, None, backing);
        assert!(again.is_empty());
        let _ = expect; // value equality exercised in the store test below
    }

    #[test]
    fn store_eventually_writes_back_with_word_mask() {
        let mut h = tiny();
        let target = PhysAddr::new(0);
        h.access(target, AccessKind::Write, Some(0xabcd), backing);
        // Thrash every level so the dirty word is forced all the way out.
        let mut writebacks = Vec::new();
        for k in 1..200u64 {
            let a = PhysAddr::new(k * 2 * LINE_BYTES as u64); // map to set 0 everywhere
            for t in h.access(a, AccessKind::Read, None, backing) {
                if let MemAccess::WriteBack(e) = t {
                    writebacks.push(e);
                }
            }
        }
        writebacks.extend(h.flush());
        let wb = writebacks
            .iter()
            .find(|e| e.addr.line() == target.line())
            .expect("dirtied line must reach memory");
        assert!(wb.dirty.contains(0), "word 0 dirty");
        assert_eq!(wb.data.word(0), 0xabcd);
    }

    #[test]
    fn flush_produces_each_dirty_line_once() {
        let mut h = tiny();
        h.access(PhysAddr::new(0), AccessKind::Write, Some(1), backing);
        h.access(PhysAddr::new(64), AccessKind::Write, Some(2), backing);
        let mut flushed = h.flush();
        flushed.sort_by_key(|e| e.addr.0);
        let lines: Vec<u64> = flushed.iter().map(|e| e.addr.line().0).collect();
        assert!(
            lines.contains(&0) && lines.contains(&1),
            "lines = {lines:?}"
        );
        assert!(h.flush().is_empty());
    }
}
