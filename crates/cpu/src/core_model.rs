//! The simplified out-of-order core: stall accounting around memory ops.
//!
//! Each core retires one instruction per CPU cycle while it is not stalled.
//! Two mechanisms throttle it, mirroring a real OoO pipeline:
//!
//! 1. **MLP window** — at most `mlp` PCM reads may be outstanding (MSHR
//!    limit); issuing beyond that stalls immediately.
//! 2. **ROB slack** — after issuing a read the core can retire only
//!    `read_slack` further instructions before the reorder buffer fills
//!    behind the pending load; it then stalls until the *oldest* read
//!    returns. This is what makes IPC sensitive to effective read latency
//!    even at modest memory intensity — the dependence the paper's
//!    Figures 10 and 11 connect.
//!
//! Writes post to the memory controller and stall only on queue
//! back-pressure. The core keeps time in CPU cycles; the simulator
//! converts with the exact 25/4 clock ratio of Table I.

use pcmap_types::{CoreId, CpuParams, Cycle};
use std::collections::VecDeque;

/// One operation from a workload stream, as seen by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkOp {
    /// Retire this many non-memory instructions.
    Compute(u64),
    /// Issue a PCM read (post-LLC miss).
    Read,
    /// Issue a PCM write-back.
    Write,
}

/// Per-core performance counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired (compute + one per memory op).
    pub retired: u64,
    /// CPU cycles spent stalled on reads (ROB barrier or full MLP window).
    pub read_stall_cycles: u64,
    /// CPU cycles spent stalled on write-queue back-pressure.
    pub write_stall_cycles: u64,
    /// Pipeline rollbacks charged (RoW mis-speculation accounting).
    pub rollbacks: u64,
    /// CPU cycles lost to rollbacks.
    pub rollback_cycles: u64,
}

impl CoreStats {
    /// Captures these counters as a mergeable
    /// [`MetricsSnapshot`](pcmap_obs::MetricsSnapshot): summing across the
    /// eight cores gives whole-CPU totals.
    pub fn snapshot(&self) -> pcmap_obs::MetricsSnapshot {
        let mut s = pcmap_obs::MetricsSnapshot::new();
        s.set_counter("retired", self.retired);
        s.set_counter("read_stall_cycles", self.read_stall_cycles);
        s.set_counter("write_stall_cycles", self.write_stall_cycles);
        s.set_counter("rollbacks", self.rollbacks);
        s.set_counter("rollback_cycles", self.rollback_cycles);
        s
    }
}

/// What a core wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// Issue a read now.
    WantRead,
    /// Issue a write now.
    WantWrite,
    /// Computing until the given CPU cycle.
    BusyUntil(u64),
    /// Stalled until a read completion arrives.
    StalledOnRead,
    /// The op stream is exhausted.
    Done,
}

/// The stall-accounting core model.
#[derive(Debug, Clone)]
pub struct CoreModel {
    id: CoreId,
    mlp: usize,
    read_slack: u64,
    /// CPU cycle up to which this core has simulated.
    now: u64,
    /// Retirement barriers: for each outstanding read (FIFO), the retired
    /// count at which the ROB fills behind it.
    barriers: VecDeque<u64>,
    /// Instructions left in the current compute burst.
    compute_remaining: u64,
    /// Pending memory op (after the compute gap has been consumed).
    pending: Option<WorkOp>,
    stats: CoreStats,
    /// Set while stalled waiting for a read: the CPU cycle the stall began.
    stall_started: Option<u64>,
    finished: bool,
}

impl CoreModel {
    /// Creates an idle core.
    pub fn new(id: CoreId, params: &CpuParams) -> Self {
        Self {
            id,
            mlp: params.mlp,
            read_slack: params.read_slack,
            now: 0,
            barriers: VecDeque::new(),
            compute_remaining: 0,
            pending: None,
            stats: CoreStats::default(),
            stall_started: None,
            finished: false,
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The CPU cycle this core has reached.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Reads currently in flight.
    pub fn outstanding_reads(&self) -> usize {
        self.barriers.len()
    }

    /// `true` once the op stream signalled completion and all work
    /// drained.
    pub fn is_finished(&self) -> bool {
        self.finished
            && self.barriers.is_empty()
            && self.compute_remaining == 0
            && self.pending.is_none()
    }

    /// Instructions the core may retire before the oldest read's barrier.
    fn barrier_headroom(&self) -> u64 {
        match self.barriers.front() {
            Some(&b) => b.saturating_sub(self.stats.retired),
            None => u64::MAX,
        }
    }

    /// Retires instructions up to `cpu_now`, bounded by the compute burst
    /// and the oldest read's ROB barrier.
    fn advance_to(&mut self, cpu_now: u64) {
        while self.now < cpu_now && self.compute_remaining > 0 {
            let headroom = self.barrier_headroom();
            if headroom == 0 {
                // ROB full behind the oldest read: stall here.
                if self.stall_started.is_none() {
                    self.stall_started = Some(self.now);
                }
                return;
            }
            let step = (cpu_now - self.now)
                .min(self.compute_remaining)
                .min(headroom);
            // pcmap-lint: allow(manual-time-advance, reason = "the core's local clock retires trace-defined compute bursts; the engine observes it only via BusyUntil horizons")
            self.now += step;
            self.stats.retired += step;
            self.compute_remaining -= step;
        }
        if self.compute_remaining == 0 {
            // Idle (or waiting for an op): wall-clock time still passes.
            self.now = self.now.max(cpu_now);
        }
    }

    /// Supplies the next op from the workload stream. Must only be called
    /// when [`CoreModel::needs_op`] is `true`.
    ///
    /// # Panics
    ///
    /// Panics if an op is already pending or a compute burst is running.
    pub fn supply(&mut self, op: Option<WorkOp>) {
        assert!(self.needs_op(), "core is not ready for a new op");
        match op {
            Some(WorkOp::Compute(n)) => self.compute_remaining += n,
            Some(other) => self.pending = Some(other),
            None => self.finished = true,
        }
    }

    /// `true` if the core needs [`CoreModel::supply`] to make progress.
    pub fn needs_op(&self) -> bool {
        self.compute_remaining == 0 && self.pending.is_none() && !self.finished
    }

    /// Advances local time to `cpu_now` and reports what the core needs.
    pub fn poll(&mut self, cpu_now: u64) -> CoreAction {
        let cpu_now = cpu_now.max(self.now);
        self.advance_to(cpu_now);
        if self.compute_remaining > 0 {
            if self.barrier_headroom() == 0 {
                return CoreAction::StalledOnRead;
            }
            return CoreAction::BusyUntil(
                self.now + self.compute_remaining.min(self.barrier_headroom()),
            );
        }
        match self.pending {
            Some(WorkOp::Read) => {
                if self.barriers.len() >= self.mlp {
                    if self.stall_started.is_none() {
                        self.stall_started = Some(self.now);
                    }
                    CoreAction::StalledOnRead
                } else {
                    CoreAction::WantRead
                }
            }
            Some(WorkOp::Write) => CoreAction::WantWrite,
            Some(WorkOp::Compute(_)) => unreachable!("compute handled by supply"),
            None if self.finished => CoreAction::Done,
            None => CoreAction::BusyUntil(self.now),
        }
    }

    /// Commits the pending read as issued.
    ///
    /// # Panics
    ///
    /// Panics if the pending op is not a read.
    pub fn read_issued(&mut self) {
        assert_eq!(self.pending, Some(WorkOp::Read), "no pending read");
        self.pending = None;
        self.stats.retired += 1;
        self.barriers
            .push_back(self.stats.retired + self.read_slack);
    }

    /// Commits the pending write as accepted by the controller.
    ///
    /// # Panics
    ///
    /// Panics if the pending op is not a write.
    pub fn write_issued(&mut self) {
        assert_eq!(self.pending, Some(WorkOp::Write), "no pending write");
        self.pending = None;
        self.stats.retired += 1;
    }

    /// Records that the controller refused the pending read (queue full);
    /// the core stalls until `retry_at` (CPU cycles).
    pub fn read_blocked(&mut self, retry_at: u64) {
        debug_assert_eq!(self.pending, Some(WorkOp::Read));
        if retry_at > self.now {
            self.stats.read_stall_cycles += retry_at - self.now;
            self.now = retry_at;
        }
    }

    /// Records that the controller refused the pending write (queue full);
    /// the core stalls until `retry_at` (CPU cycles).
    pub fn write_blocked(&mut self, retry_at: u64) {
        debug_assert_eq!(self.pending, Some(WorkOp::Write));
        if retry_at > self.now {
            self.stats.write_stall_cycles += retry_at - self.now;
            self.now = retry_at;
        }
    }

    /// Delivers the oldest read's completion at CPU cycle `cpu_when`.
    pub fn read_returned(&mut self, cpu_when: u64) {
        debug_assert!(
            !self.barriers.is_empty(),
            "completion without outstanding read"
        );
        self.barriers.pop_front();
        if let Some(start) = self.stall_started.take() {
            let end = cpu_when.max(start);
            if end > self.now {
                self.stats.read_stall_cycles += end - self.now.max(start);
                self.now = end;
            }
        }
    }

    /// Charges a RoW rollback: the pipeline squashes at `cpu_when` and
    /// pays `penalty` CPU cycles.
    pub fn rollback(&mut self, cpu_when: u64, penalty: u64) {
        self.stats.rollbacks += 1;
        self.stats.rollback_cycles += penalty;
        let resume = cpu_when.max(self.now) + penalty;
        self.now = resume;
    }

    /// Instructions per CPU cycle up to the core's local time.
    pub fn ipc(&self) -> f64 {
        if self.now == 0 {
            0.0
        } else {
            self.stats.retired as f64 / self.now as f64
        }
    }
}

/// Converts a memory-cycle instant to CPU cycles (exact, floor).
pub fn mem_to_cpu(t: Cycle, params: &CpuParams) -> u64 {
    let (num, den) = params.cpu_cycles_per_mem_cycle();
    t.0 * num / den
}

/// Converts a CPU-cycle instant to memory cycles (exact, ceiling — the
/// memory system cannot act mid-cycle).
pub fn cpu_to_mem(t: u64, params: &CpuParams) -> Cycle {
    let (num, den) = params.cpu_cycles_per_mem_cycle();
    Cycle((t * den).div_ceil(num))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreModel {
        CoreModel::new(CoreId(0), &CpuParams::paper_default())
    }

    #[test]
    fn compute_advances_with_time() {
        let mut c = core();
        assert!(c.needs_op());
        c.supply(Some(WorkOp::Compute(100)));
        assert_eq!(c.poll(0), CoreAction::BusyUntil(100));
        assert_eq!(c.poll(100), CoreAction::BusyUntil(100));
        assert_eq!(c.stats().retired, 100);
        assert!(c.needs_op());
    }

    #[test]
    fn reads_overlap_up_to_mlp() {
        let mut c = core();
        for _ in 0..4 {
            c.supply(Some(WorkOp::Read));
            assert_eq!(c.poll(c.now()), CoreAction::WantRead);
            c.read_issued();
        }
        assert_eq!(c.outstanding_reads(), 4);
        // Fifth read stalls (mlp = 4).
        c.supply(Some(WorkOp::Read));
        assert_eq!(c.poll(c.now()), CoreAction::StalledOnRead);
        c.read_returned(500);
        assert_eq!(c.poll(500), CoreAction::WantRead);
        assert_eq!(c.stats().read_stall_cycles, 500);
    }

    #[test]
    fn rob_barrier_stalls_a_lone_slow_read() {
        let slack = CpuParams::paper_default().read_slack;
        let mut c = core();
        c.supply(Some(WorkOp::Read));
        c.poll(0);
        c.read_issued(); // barrier at retired(1) + slack
        c.supply(Some(WorkOp::Compute(1000)));
        // The core retires only `slack` instructions, then stalls.
        assert_eq!(c.poll(1000), CoreAction::StalledOnRead);
        assert_eq!(c.stats().retired, 1 + slack);
        // Read returns at cycle 400: stall from `slack` to 400 charged.
        c.read_returned(400);
        assert_eq!(c.now(), 400);
        assert!(c.stats().read_stall_cycles > 0);
        // Compute resumes.
        match c.poll(400) {
            CoreAction::BusyUntil(t) => assert!(t > 400),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fast_read_never_stalls_the_rob() {
        let mut c = core();
        c.supply(Some(WorkOp::Read));
        c.poll(0);
        c.read_issued();
        c.supply(Some(WorkOp::Compute(1000)));
        // Read returns well before the barrier is reached.
        c.poll(10);
        c.read_returned(10);
        assert_eq!(c.poll(500), CoreAction::BusyUntil(1000));
        assert_eq!(c.stats().read_stall_cycles, 0);
    }

    #[test]
    fn write_backpressure_charges_stall() {
        let mut c = core();
        c.supply(Some(WorkOp::Write));
        assert_eq!(c.poll(0), CoreAction::WantWrite);
        c.write_blocked(80);
        assert_eq!(c.stats().write_stall_cycles, 80);
        assert_eq!(c.poll(80), CoreAction::WantWrite);
        c.write_issued();
        assert_eq!(c.stats().retired, 1);
    }

    #[test]
    fn rollback_pushes_time_forward() {
        let mut c = core();
        c.supply(Some(WorkOp::Compute(10)));
        c.poll(10);
        c.rollback(50, 128);
        assert_eq!(c.stats().rollbacks, 1);
        assert_eq!(c.now(), 178);
    }

    #[test]
    fn finish_after_stream_end_and_drained_reads() {
        let mut c = core();
        c.supply(Some(WorkOp::Read));
        c.poll(0);
        c.read_issued();
        c.supply(None);
        assert!(!c.is_finished(), "read still outstanding");
        assert_eq!(c.poll(10), CoreAction::Done);
        c.read_returned(20);
        assert!(c.is_finished());
    }

    #[test]
    fn ipc_reflects_stalls() {
        let mut busy = core();
        busy.supply(Some(WorkOp::Compute(1000)));
        busy.poll(1000);
        assert!((busy.ipc() - 1.0).abs() < 1e-9);

        let mut stalled = core();
        stalled.supply(Some(WorkOp::Compute(500)));
        stalled.poll(500);
        stalled.rollback(500, 500); // now = 1000, retired = 500
        assert!((stalled.ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clock_conversions_round_trip() {
        let p = CpuParams::paper_default();
        assert_eq!(mem_to_cpu(Cycle(4), &p), 25);
        assert_eq!(cpu_to_mem(25, &p), Cycle(4));
        assert_eq!(cpu_to_mem(26, &p), Cycle(5));
        assert!(mem_to_cpu(cpu_to_mem(123, &p), &p) >= 123);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn double_supply_panics() {
        let mut c = core();
        c.supply(Some(WorkOp::Read));
        c.supply(Some(WorkOp::Read));
    }
}
