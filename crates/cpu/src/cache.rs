//! A set-associative write-back cache with per-word dirty masks.
//!
//! §III-B of the paper: most write-backs modify only a few 8-byte words of
//! their line. This cache tracks dirtiness at word granularity so that its
//! evictions carry *organic* essential-word masks — the functional
//! counterpart to the calibrated synthetic distributions in
//! `pcmap-workloads`.

use pcmap_types::{CacheLine, PhysAddr, WordMask, LINE_BYTES, WORD_BYTES};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * LINE_BYTES
    }
}

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (dirties the touched word).
    Write,
}

/// A dirty line evicted by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Base address of the evicted line.
    pub addr: PhysAddr,
    /// The line's current contents.
    pub data: CacheLine,
    /// Which words were written while resident. Note that a word may be
    /// marked dirty yet hold its original value (a silent store) — exactly
    /// the redundancy PCM differential writes squash.
    pub dirty: WordMask,
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: WordMask,
    data: CacheLine,
    lru: u64,
}

/// The result of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// `true` on hit.
    pub hit: bool,
    /// A dirty eviction caused by the fill, if any.
    pub eviction: Option<Eviction>,
    /// Base address of the line that must be fetched on a miss.
    pub fill: Option<PhysAddr>,
}

/// A set-associative, write-allocate, write-back cache with LRU
/// replacement and per-word dirty tracking.
///
/// # Example
///
/// ```
/// use pcmap_cpu::{AccessKind, Cache, CacheConfig};
/// use pcmap_types::PhysAddr;
///
/// let mut c = Cache::new(CacheConfig { sets: 16, ways: 2 });
/// let miss = c.access(PhysAddr::new(0x40), AccessKind::Write, Some(42));
/// assert!(!miss.hit);
/// let hit = c.access(PhysAddr::new(0x40), AccessKind::Read, None);
/// assert!(hit.hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be positive");
        let way = Way {
            tag: 0,
            valid: false,
            dirty: WordMask::empty(),
            data: CacheLine::zeroed(),
            lru: 0,
        };
        Self {
            cfg,
            sets: vec![vec![way; cfg.ways]; cfg.sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn index_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.line().0;
        (
            (line as usize) & (self.cfg.sets - 1),
            line >> self.cfg.sets.trailing_zeros(),
        )
    }

    /// Accesses the word containing `addr`. On a write, `value` (if given)
    /// is stored into that word. Misses allocate; a displaced dirty line is
    /// returned as an eviction and the missing line's address as `fill`
    /// (the caller fetches it and installs via [`Cache::fill`]).
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind, value: Option<u64>) -> AccessResult {
        self.tick += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let word = addr.line_offset() / WORD_BYTES;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            if kind == AccessKind::Write {
                way.dirty.insert(word);
                if let Some(v) = value {
                    way.data.set_word(word, v);
                }
            }
            self.hits += 1;
            return AccessResult {
                hit: true,
                eviction: None,
                fill: None,
            };
        }

        self.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.lru))
            .map(|(i, _)| i)
            .expect("ways > 0");
        let victim = &mut set[victim_idx];
        let eviction = if victim.valid && !victim.dirty.is_empty() {
            let line_no = (victim.tag << self.cfg.sets.trailing_zeros()) | set_idx as u64;
            Some(Eviction {
                addr: PhysAddr::new(line_no * LINE_BYTES as u64),
                data: victim.data,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.lru = self.tick;
        victim.dirty = WordMask::empty();
        victim.data = CacheLine::zeroed(); // placeholder until fill()
        if kind == AccessKind::Write {
            victim.dirty.insert(word);
            if let Some(v) = value {
                victim.data.set_word(word, v);
            }
        }
        AccessResult {
            hit: false,
            eviction,
            fill: Some(addr.line().base()),
        }
    }

    /// Installs fetched memory contents into the line holding `addr`,
    /// preserving any words already written since allocation.
    pub fn fill(&mut self, addr: PhysAddr, memory_data: CacheLine) {
        let (set_idx, tag) = self.index_tag(addr);
        if let Some(way) = self.sets[set_idx]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            let written = way.dirty;
            let mut data = memory_data;
            data.merge_words(&way.data, written);
            way.data = data;
        }
    }

    /// Reads a word if resident.
    pub fn peek_word(&self, addr: PhysAddr) -> Option<u64> {
        let (set_idx, tag) = self.index_tag(addr);
        let word = addr.line_offset() / WORD_BYTES;
        self.sets[set_idx]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| w.data.word(word))
    }

    /// Flushes every dirty line, returning the write-backs.
    pub fn flush(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for way in set.iter_mut() {
                if way.valid && !way.dirty.is_empty() {
                    let line_no = (way.tag << self.cfg.sets.trailing_zeros()) | set_idx as u64;
                    out.push(Eviction {
                        addr: PhysAddr::new(line_no * LINE_BYTES as u64),
                        data: way.data,
                        dirty: way.dirty,
                    });
                    way.dirty = WordMask::empty();
                }
            }
        }
        out
    }

    /// (hits, misses) so far.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        Cache::new(CacheConfig { sets: 4, ways: 2 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        let a = PhysAddr::new(0x100);
        assert!(!c.access(a, AccessKind::Read, None).hit);
        assert!(c.access(a, AccessKind::Read, None).hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn write_marks_only_touched_word_dirty() {
        let mut c = cache();
        let base = PhysAddr::new(0x200);
        c.access(base, AccessKind::Write, Some(1)); // word 0
        c.access(PhysAddr::new(0x200 + 24), AccessKind::Write, Some(2)); // word 3
                                                                         // Evict by filling the set with conflicting lines.
        let mut evicted = None;
        for k in 1..=2u64 {
            let conflict = PhysAddr::new(0x200 + k * 4 * 64); // same set (4 sets)
            let r = c.access(conflict, AccessKind::Read, None);
            if let Some(e) = r.eviction {
                evicted = Some(e);
            }
        }
        let e = evicted.expect("dirty line must be written back");
        assert_eq!(e.addr, base);
        let dirty: Vec<_> = e.dirty.iter().collect();
        assert_eq!(dirty, vec![0, 3]);
        assert_eq!(e.data.word(0), 1);
        assert_eq!(e.data.word(3), 2);
    }

    #[test]
    fn fill_preserves_written_words() {
        let mut c = cache();
        let a = PhysAddr::new(0x40);
        c.access(a, AccessKind::Write, Some(7)); // write word 0 before fill
        let mem = CacheLine::from_seed(5);
        c.fill(a, mem);
        assert_eq!(c.peek_word(a), Some(7), "written word survives the fill");
        assert_eq!(c.peek_word(PhysAddr::new(0x40 + 8)), Some(mem.word(1)));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache();
        let a = PhysAddr::new(0); // set 0
        let b = PhysAddr::new(4 * 64); // set 0
        let d = PhysAddr::new(8 * 64); // set 0
        c.access(a, AccessKind::Read, None);
        c.access(b, AccessKind::Read, None);
        c.access(a, AccessKind::Read, None); // a is now MRU
        c.access(d, AccessKind::Read, None); // evicts b (clean, no wb)
        assert!(c.access(a, AccessKind::Read, None).hit);
        assert!(!c.access(b, AccessKind::Read, None).hit);
    }

    #[test]
    fn flush_returns_and_clears_dirty_lines() {
        let mut c = cache();
        c.access(PhysAddr::new(0), AccessKind::Write, Some(9));
        c.access(PhysAddr::new(64), AccessKind::Write, Some(8));
        let wb = c.flush();
        assert_eq!(wb.len(), 2);
        assert!(c.flush().is_empty(), "second flush finds nothing dirty");
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = cache();
        c.access(PhysAddr::new(0), AccessKind::Read, None);
        c.access(PhysAddr::new(4 * 64), AccessKind::Read, None);
        let r = c.access(PhysAddr::new(8 * 64), AccessKind::Read, None);
        assert!(r.eviction.is_none());
        assert_eq!(r.fill, Some(PhysAddr::new(8 * 64)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig { sets: 3, ways: 1 });
    }
}
