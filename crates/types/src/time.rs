//! Simulation time in memory-bus cycles.
//!
//! The whole memory system is simulated at the 400 MHz memory clock of
//! Table I (2.5 ns per cycle). [`Cycle`] is a point in simulated time;
//! [`Duration`] is a span. CPU-side quantities are converted through the
//! clock ratio held in [`crate::CpuParams`].

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Memory clock frequency from Table I of the paper, in MHz.
pub const MEM_CLOCK_MHZ: u64 = 400;

/// Picoseconds per memory cycle (2.5 ns at 400 MHz).
pub const PS_PER_CYCLE: u64 = 1_000_000 / MEM_CLOCK_MHZ;

/// A point in simulated time, measured in memory cycles since reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

/// A span of simulated time, measured in memory cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);
    /// The far future; used as "no deadline" / "never busy until".
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Raw cycle count.
    #[must_use]
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[must_use]
    #[inline]
    pub fn since(self, earlier: Cycle) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[must_use]
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Converts to nanoseconds of simulated time.
    #[must_use]
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 * PS_PER_CYCLE as f64 / 1000.0
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from nanoseconds, rounding *up* to whole cycles
    /// (hardware cannot finish mid-cycle).
    #[must_use]
    #[inline]
    pub fn from_nanos(ns: u64) -> Duration {
        Duration((ns * 1000).div_ceil(PS_PER_CYCLE))
    }

    /// Raw cycle count.
    #[must_use]
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts to nanoseconds of simulated time.
    #[must_use]
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 as f64 * PS_PER_CYCLE as f64 / 1000.0
    }
}

impl Add<Duration> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Duration) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::since`] for a saturating difference.
    #[inline]
    fn sub(self, rhs: Cycle) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_round_trip() {
        // 60 ns read latency = 24 cycles at 400 MHz.
        let d = Duration::from_nanos(60);
        assert_eq!(d.as_u64(), 24);
        assert_eq!(d.as_nanos(), 60.0);
    }

    #[test]
    fn from_nanos_rounds_up() {
        // 1 ns does not fit in zero cycles.
        assert_eq!(Duration::from_nanos(1).as_u64(), 1);
        assert_eq!(Duration::from_nanos(3).as_u64(), 2); // 3ns / 2.5ns -> 2
    }

    #[test]
    fn arithmetic() {
        let t = Cycle(10) + Duration(5);
        assert_eq!(t, Cycle(15));
        assert_eq!(t - Cycle(10), Duration(5));
        assert_eq!(Cycle(3).since(Cycle(10)), Duration::ZERO);
        assert_eq!(Cycle(3).max(Cycle(9)), Cycle(9));
    }

    #[test]
    fn display() {
        assert_eq!(Cycle(7).to_string(), "@7");
        assert_eq!(Duration(7).to_string(), "7cy");
    }
}
