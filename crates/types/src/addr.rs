//! Physical addresses and their decomposition onto the memory organization.
//!
//! The simulator uses a line-interleaved mapping: consecutive cache lines
//! stripe across channels first (maximizing channel-level parallelism, as in
//! the paper's 4-channel system), then across columns of an open row, then
//! banks, then rows. The decode is driven entirely by [`crate::MemOrg`], so
//! alternative geometries used in tests and ablations decode correctly too.

use crate::config::MemOrg;
use crate::ids::{BankId, ChannelId, ColAddr, RankId, RowAddr};
use crate::line::LINE_BYTES;
use core::fmt;

/// A byte-granular physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A cache-line-granular address (`PhysAddr >> 6` for 64-byte lines).
///
/// This is the address the PCMap rotation schemes key off: the data layout
/// rotates by `LineAddr % 8` and the ECC/PCC placement by `LineAddr % 10`
/// (§IV-C2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl PhysAddr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The cache line containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES as u64)
    }

    /// Byte offset within the cache line.
    #[inline]
    pub fn line_offset(self) -> usize {
        (self.0 % LINE_BYTES as u64) as usize
    }
}

impl LineAddr {
    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 * LINE_BYTES as u64)
    }

    /// The line `n` lines after this one.
    #[inline]
    pub fn offset(self, n: u64) -> LineAddr {
        LineAddr(self.0 + n)
    }
}

impl From<u64> for PhysAddr {
    #[inline]
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The hardware coordinates of a cache line: which channel, rank, bank, row
/// and column it occupies, plus the byte offset of the original address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemLocation {
    /// Memory channel (and therefore memory controller).
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// Row (page) within the bank.
    pub row: RowAddr,
    /// Column — the cache-line slot within the row.
    pub col: ColAddr,
    /// Byte offset of the decoded address within its line.
    pub line_offset: usize,
    /// The cache line address this location was decoded from.
    pub line: LineAddr,
}

impl MemOrg {
    /// Decodes a physical address into hardware coordinates.
    ///
    /// Bit order (LSB first): line offset, channel, column, bank, rank, row.
    /// Addresses beyond the installed capacity wrap (the simulator treats
    /// the address space as toroidal rather than faulting).
    pub fn decode(&self, addr: PhysAddr) -> MemLocation {
        let line = addr.line();
        let mut v = line.0;
        let channel = (v % self.channels as u64) as u8;
        v /= self.channels as u64;
        let col = (v % self.lines_per_row as u64) as u32;
        v /= self.lines_per_row as u64;
        let bank = (v % self.banks as u64) as u8;
        v /= self.banks as u64;
        let rank = (v % self.ranks_per_channel as u64) as u8;
        v /= self.ranks_per_channel as u64;
        let row = (v % self.rows_per_bank as u64) as u32;
        MemLocation {
            channel: ChannelId(channel),
            rank: RankId(rank),
            bank: BankId(bank),
            row: RowAddr(row),
            col: ColAddr(col),
            line_offset: addr.line_offset(),
            line,
        }
    }

    /// Re-encodes hardware coordinates into the canonical line address that
    /// decodes back to them (inverse of [`MemOrg::decode`] for in-range
    /// coordinates).
    pub fn encode(
        &self,
        channel: ChannelId,
        rank: RankId,
        bank: BankId,
        row: RowAddr,
        col: ColAddr,
    ) -> LineAddr {
        let mut v = row.0 as u64;
        v = v * self.ranks_per_channel as u64 + rank.0 as u64;
        v = v * self.banks as u64 + bank.0 as u64;
        v = v * self.lines_per_row as u64 + col.0 as u64;
        v = v * self.channels as u64 + channel.0 as u64;
        LineAddr(v)
    }

    /// Total installed capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks_per_channel as u64
            * self.banks as u64
            * self.rows_per_bank as u64
            * self.lines_per_row as u64
            * LINE_BYTES as u64
    }

    /// Total cache lines installed.
    pub fn capacity_lines(&self) -> u64 {
        self.capacity_bytes() / LINE_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_is_8_gib() {
        let org = MemOrg::paper_default();
        assert_eq!(org.capacity_bytes(), 8 << 30);
    }

    #[test]
    fn consecutive_lines_stripe_channels() {
        let org = MemOrg::paper_default();
        let a = org.decode(PhysAddr::new(0));
        let b = org.decode(PhysAddr::new(64));
        let c = org.decode(PhysAddr::new(64 * 4));
        assert_eq!(a.channel, ChannelId(0));
        assert_eq!(b.channel, ChannelId(1));
        // After all 4 channels, back to channel 0 at the next column.
        assert_eq!(c.channel, ChannelId(0));
        assert_eq!(c.col, ColAddr(1));
        assert_eq!(c.bank, a.bank);
        assert_eq!(c.row, a.row);
    }

    #[test]
    fn line_offset_extracted() {
        let org = MemOrg::paper_default();
        let loc = org.decode(PhysAddr::new(64 + 17));
        assert_eq!(loc.line_offset, 17);
        assert_eq!(loc.line, LineAddr(1));
    }

    #[test]
    fn encode_decode_round_trip() {
        let org = MemOrg::paper_default();
        let line = org.encode(
            ChannelId(3),
            RankId(0),
            BankId(5),
            RowAddr(1234),
            ColAddr(77),
        );
        let loc = org.decode(line.base());
        assert_eq!(loc.channel, ChannelId(3));
        assert_eq!(loc.bank, BankId(5));
        assert_eq!(loc.row, RowAddr(1234));
        assert_eq!(loc.col, ColAddr(77));
    }

    #[test]
    fn decode_wraps_beyond_capacity() {
        let org = MemOrg::paper_default();
        let cap = org.capacity_bytes();
        let a = org.decode(PhysAddr::new(100 * 64));
        let b = org.decode(PhysAddr::new(cap + 100 * 64));
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(a.col, b.col);
    }

    #[test]
    fn phys_addr_line_math() {
        let a = PhysAddr::new(0x1000);
        assert_eq!(a.line(), LineAddr(0x40));
        assert_eq!(a.line().base(), a);
        assert_eq!(LineAddr(5).offset(3), LineAddr(8));
    }
}
