//! Small fixed-capacity bit-sets over words and chips.
//!
//! [`WordMask`] identifies which of the eight logical word slots of a cache
//! line are involved in an operation (the *essential words* of a write).
//! [`ChipSet`] identifies which of the ten physical chips of a PCMap rank
//! (8 data + ECC + PCC) an operation occupies.

use crate::ids::ChipId;
use core::fmt;
use core::ops::{BitAnd, BitOr, Not};

macro_rules! bitset_type {
    ($(#[$doc:meta])* $name:ident, $capacity:expr, $full_bits:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
        pub struct $name(u16);

        impl $name {
            /// Maximum number of members.
            pub const CAPACITY: usize = $capacity;

            /// The empty set.
            #[inline]
            pub fn empty() -> Self {
                Self(0)
            }

            /// The set containing every slot.
            #[inline]
            pub fn full() -> Self {
                Self($full_bits)
            }

            /// A set containing exactly `idx`.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= CAPACITY`.
            #[inline]
            pub fn single(idx: usize) -> Self {
                let mut s = Self::empty();
                s.insert(idx);
                s
            }

            /// Builds a set from raw bits, masking off out-of-range bits.
            #[inline]
            pub fn from_bits(bits: u16) -> Self {
                Self(bits & $full_bits)
            }

            /// Raw bit representation (bit *i* set ⇔ member *i* present).
            #[inline]
            pub fn bits(self) -> u16 {
                self.0
            }

            /// Adds `idx` to the set.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= CAPACITY`.
            #[inline]
            pub fn insert(&mut self, idx: usize) {
                assert!(idx < Self::CAPACITY, "index {idx} out of range");
                self.0 |= 1 << idx;
            }

            /// Removes `idx` from the set.
            ///
            /// # Panics
            ///
            /// Panics if `idx >= CAPACITY`.
            #[inline]
            pub fn remove(&mut self, idx: usize) {
                assert!(idx < Self::CAPACITY, "index {idx} out of range");
                self.0 &= !(1 << idx);
            }

            /// Returns `true` if `idx` is in the set.
            #[inline]
            pub fn contains(self, idx: usize) -> bool {
                idx < Self::CAPACITY && self.0 & (1 << idx) != 0
            }

            /// Number of members.
            #[inline]
            pub fn count(self) -> usize {
                self.0.count_ones() as usize
            }

            /// Returns `true` if the set has no members.
            #[inline]
            pub fn is_empty(self) -> bool {
                self.0 == 0
            }

            /// Returns `true` if `self` and `other` share no members.
            #[inline]
            pub fn is_disjoint(self, other: Self) -> bool {
                self.0 & other.0 == 0
            }

            /// Returns `true` if every member of `self` is in `other`.
            #[inline]
            pub fn is_subset(self, other: Self) -> bool {
                self.0 & !other.0 == 0
            }

            /// Iterates over member indices in ascending order.
            pub fn iter(self) -> impl Iterator<Item = usize> {
                (0..Self::CAPACITY).filter(move |&i| self.contains(i))
            }

            /// The lowest member, if any.
            #[inline]
            pub fn first(self) -> Option<usize> {
                if self.0 == 0 {
                    None
                } else {
                    Some(self.0.trailing_zeros() as usize)
                }
            }
        }

        impl BitOr for $name {
            type Output = Self;
            #[inline]
            fn bitor(self, rhs: Self) -> Self {
                Self(self.0 | rhs.0)
            }
        }

        impl BitAnd for $name {
            type Output = Self;
            #[inline]
            fn bitand(self, rhs: Self) -> Self {
                Self(self.0 & rhs.0)
            }
        }

        impl Not for $name {
            type Output = Self;
            #[inline]
            fn not(self) -> Self {
                Self(!self.0 & $full_bits)
            }
        }

        impl FromIterator<usize> for $name {
            fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
                let mut s = Self::empty();
                for i in iter {
                    s.insert(i);
                }
                s
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "{{"))?;
                let mut first = true;
                for i in self.iter() {
                    if !first {
                        write!(f, ",")?;
                    }
                    write!(f, "{i}")?;
                    first = false;
                }
                write!(f, "}}")
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }
    };
}

bitset_type!(
    /// The set of logical 8-byte word slots (0..8) touched by an operation.
    ///
    /// For a write-back this is the *essential word* set: the words whose
    /// contents actually changed and must be programmed into PCM.
    ///
    /// # Example
    ///
    /// ```
    /// use pcmap_types::WordMask;
    ///
    /// let a: WordMask = [1usize, 5].into_iter().collect();
    /// let b: WordMask = [2usize, 6].into_iter().collect();
    /// // Disjoint essential words ⇒ the two writes can be overlapped (WoW).
    /// assert!(a.is_disjoint(b));
    /// ```
    WordMask, 8, 0x00ff
);

bitset_type!(
    /// The set of physical chips (0..10) of a PCMap rank that an operation
    /// occupies: eight data chips plus the ECC (8) and PCC (9) positions in
    /// the non-rotated layout.
    ChipSet, 10, 0x03ff
);

impl ChipSet {
    /// The set of all eight data-chip positions in the *fixed* (non-rotated)
    /// layout.
    #[inline]
    pub fn data_chips_fixed() -> Self {
        Self::from_bits(0x00ff)
    }

    /// Adds a chip by id.
    #[inline]
    pub fn insert_chip(&mut self, chip: ChipId) {
        self.insert(chip.index());
    }

    /// Returns `true` if `chip` is a member.
    #[inline]
    pub fn contains_chip(self, chip: ChipId) -> bool {
        self.contains(chip.index())
    }

    /// Iterates over member chips as [`ChipId`]s.
    pub fn chips(self) -> impl Iterator<Item = ChipId> {
        self.iter().map(|i| ChipId(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        assert_eq!(WordMask::empty().count(), 0);
        assert_eq!(WordMask::full().count(), 8);
        assert_eq!(ChipSet::full().count(), 10);
        assert!(WordMask::empty().is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut m = WordMask::empty();
        m.insert(3);
        assert!(m.contains(3));
        assert_eq!(m.count(), 1);
        m.remove(3);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        WordMask::empty().insert(8);
    }

    #[test]
    fn chipset_allows_ten_members() {
        let mut s = ChipSet::empty();
        s.insert(9);
        assert!(s.contains_chip(ChipId::PCC));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn disjoint_and_subset() {
        let a: WordMask = [0usize, 1].into_iter().collect();
        let b: WordMask = [2usize, 3].into_iter().collect();
        let c: WordMask = [0usize].into_iter().collect();
        assert!(a.is_disjoint(b));
        assert!(!a.is_disjoint(c));
        assert!(c.is_subset(a));
        assert!(!a.is_subset(c));
    }

    #[test]
    fn set_ops() {
        let a: WordMask = [0usize, 1].into_iter().collect();
        let b: WordMask = [1usize, 2].into_iter().collect();
        assert_eq!((a | b).count(), 3);
        assert_eq!((a & b).count(), 1);
        assert_eq!((!WordMask::empty()), WordMask::full());
        assert_eq!((!ChipSet::full()), ChipSet::empty());
    }

    #[test]
    fn iter_ascending_and_first() {
        let m: WordMask = [6usize, 2, 4].into_iter().collect();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 4, 6]);
        assert_eq!(m.first(), Some(2));
        assert_eq!(WordMask::empty().first(), None);
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", WordMask::empty()), "WordMask{}");
        let m = WordMask::single(5);
        assert_eq!(format!("{m:?}"), "WordMask{5}");
    }

    #[test]
    fn from_bits_masks_out_of_range() {
        assert_eq!(WordMask::from_bits(0xffff), WordMask::full());
        assert_eq!(ChipSet::from_bits(0xffff), ChipSet::full());
    }

    #[test]
    fn data_chips_fixed_excludes_ecc_pcc() {
        let d = ChipSet::data_chips_fixed();
        assert_eq!(d.count(), 8);
        assert!(!d.contains_chip(ChipId::ECC));
        assert!(!d.contains_chip(ChipId::PCC));
    }
}
