//! Service-tier configuration (DESIGN.md §16).
//!
//! The ROADMAP's production direction puts an ingestion tier in front of
//! the memory system: thousands of tenants streaming requests into a
//! sharded fleet of channels × DIMMs. [`ServeConfig`] parameterizes that
//! tier — per-tenant token-bucket admission, bounded ingress queues,
//! per-request deadlines with bounded retry + exponential backoff, and a
//! graceful-degradation ladder driven by the PR 4 fault machinery — and
//! [`ServeSummary`] is the conserved outcome ledger every serve run must
//! balance: each generated request ends in exactly one terminal bucket.
//!
//! All knobs are integers (cycles, entries, basis points) so the serve
//! tier stays inside the determinism lint's no-float-accumulation rule.

use crate::error::{ConfigError, Result};
use crate::faults::FaultConfig;

/// Ten thousand basis points = 100%.
pub const BP_SCALE: u32 = 10_000;

/// Quality-of-service class of a tenant (DESIGN.md §16).
///
/// The degradation ladder uses the class to decide who is still admitted
/// when capacity shrinks: `Critical` survives into admit-critical-only
/// mode, `Background` is the first to be deferred under read-priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantClass {
    /// Latency-critical traffic; admitted until the ladder hits `Shed`.
    Critical,
    /// Default interactive traffic.
    Standard,
    /// Bulk/batch traffic; shed first under pressure.
    Background,
}

impl TenantClass {
    /// All classes, in priority order.
    pub const ALL: [TenantClass; 3] = [
        TenantClass::Critical,
        TenantClass::Standard,
        TenantClass::Background,
    ];

    /// Stable lowercase name for reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TenantClass::Critical => "critical",
            TenantClass::Standard => "standard",
            TenantClass::Background => "background",
        }
    }

    /// Index into per-class arrays ([`Self::ALL`] order).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TenantClass::Critical => 0,
            TenantClass::Standard => 1,
            TenantClass::Background => 2,
        }
    }
}

/// A per-tenant service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// A request meets its SLO when `completion - arrival <= target`
    /// memory cycles.
    pub target: u64,
    /// Attainment goal in basis points of *retired* requests (9_500 =
    /// 95.00%). Reporting-only: the fleet never blocks on it.
    pub goal_bp: u32,
}

impl SloSpec {
    /// Paper-scale default: 4k-cycle (10 µs at 400 MHz) target, 95% goal.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            target: 4_096,
            goal_bp: 9_500,
        }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.target == 0 {
            return Err(ConfigError::new("slo target must be positive"));
        }
        if self.goal_bp > BP_SCALE {
            return Err(ConfigError::new("slo goal exceeds 100%"));
        }
        Ok(())
    }
}

/// Per-class tenant template: arrival cadence and admission budget.
///
/// Tenants are stamped out of these templates by class mix rather than
/// enumerated individually — a thousand-tenant fleet needs three
/// templates, not a thousand rows of config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// QoS class of tenants stamped from this template.
    pub class: TenantClass,
    /// Mean inter-arrival gap between a tenant's requests, in memory
    /// cycles (the generator draws uniformly in `1..=2*period`).
    pub arrival_period: u64,
    /// Token-bucket burst capacity, in whole tokens (1 token = 1
    /// admitted request).
    pub bucket_capacity: u32,
    /// Memory cycles to refill one token.
    pub bucket_refill_period: u64,
}

impl TenantSpec {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.arrival_period == 0 {
            return Err(ConfigError::new("tenant arrival period must be positive"));
        }
        if self.bucket_capacity == 0 {
            return Err(ConfigError::new(
                "token bucket needs capacity for one token",
            ));
        }
        if self.bucket_refill_period == 0 {
            return Err(ConfigError::new("token refill period must be positive"));
        }
        Ok(())
    }
}

/// Full configuration of the `pcmap-serve` ingestion tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of simulated tenants across the fleet.
    pub tenants: u32,
    /// Fleet shards are `channels × dimms`; each shard is an independent
    /// sub-simulation (the unit of `--jobs` parallelism).
    pub channels: u32,
    /// DIMMs per channel.
    pub dimms: u32,
    /// Service lanes (ranks) per shard; total ranks =
    /// `channels × dimms × ranks_per_shard`.
    pub ranks_per_shard: u32,
    /// Total requests generated across the fleet (split over tenants).
    pub requests: u64,
    /// Seed for arrival/fault streams (mixed per shard).
    pub seed: u64,
    /// Fraction of requests that are reads, in basis points.
    pub read_fraction_bp: u32,
    /// Hard cap on ingress-queue entries per shard — the bounded-memory
    /// guarantee. Overload sheds; the queue never grows past this.
    pub ingress_cap: u32,
    /// Ingress occupancy at which backpressure asserts (new arrivals are
    /// deferred with backoff instead of enqueued).
    pub backpressure_high: u32,
    /// Occupancy at which backpressure releases.
    pub backpressure_low: u32,
    /// Cycles from first arrival to required completion; a request still
    /// queued past its deadline times out and re-enters with backoff.
    pub deadline: u64,
    /// Maximum re-admissions per request (timeout or failed service)
    /// before it is failed upward visibly.
    pub retry_budget: u32,
    /// Base of the exponential ingestion backoff: retry `k` waits
    /// `retry_backoff << k` cycles (shift saturated).
    pub retry_backoff: u64,
    /// Base service occupancy of a read at a rank, in cycles.
    pub service_read: u64,
    /// Base service occupancy of a write at a rank, in cycles.
    pub service_write: u64,
    /// Per-class tenant templates, `[critical, standard, background]`.
    pub tenant_template: [TenantSpec; 3],
    /// Class mix over tenants in basis points; must sum to [`BP_SCALE`].
    pub class_mix_bp: [u32; 3],
    /// Service-level objective applied to every retired request.
    pub slo: SloSpec,
    /// Fault injection driving the degradation ladder (reuses the §11
    /// machinery; one `FaultPlan` per shard).
    pub faults: FaultConfig,
}

impl ServeConfig {
    /// Paper-scale default: 64 tenants over a 4-channel × 2-DIMM fleet
    /// (8 shards × 4 ranks), faults disabled.
    #[must_use]
    pub fn paper_default() -> Self {
        let template = |class: TenantClass| TenantSpec {
            class,
            arrival_period: 96,
            bucket_capacity: 16,
            bucket_refill_period: 64,
        };
        Self {
            tenants: 64,
            channels: 4,
            dimms: 2,
            ranks_per_shard: 4,
            requests: 20_000,
            seed: 0x5e12_7e00,
            read_fraction_bp: 7_000,
            ingress_cap: 256,
            backpressure_high: 192,
            backpressure_low: 96,
            deadline: 16_384,
            retry_budget: 3,
            retry_backoff: 32,
            service_read: 28,
            service_write: 56,
            tenant_template: [
                template(TenantClass::Critical),
                template(TenantClass::Standard),
                template(TenantClass::Background),
            ],
            class_mix_bp: [1_000, 6_000, 3_000],
            slo: SloSpec::paper_default(),
            faults: FaultConfig::disabled(),
        }
    }

    /// The sustained-load soak profile behind `cargo xtask serve-soak`:
    /// ≥1M requests from 1 024 tenants over 8 channels × 4 DIMMs ×
    /// 8 ranks (256 ranks) under a seeded fault storm.
    #[must_use]
    pub fn soak() -> Self {
        let mut cfg = Self::paper_default();
        cfg.tenants = 1_024;
        cfg.channels = 8;
        cfg.dimms = 4;
        cfg.ranks_per_shard = 8;
        cfg.requests = 1_048_576;
        cfg.faults = FaultConfig::storm(0.02, 0x5e12_f417);
        cfg
    }

    /// Number of fleet shards (`channels × dimms`).
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.channels * self.dimms
    }

    /// Total service lanes across the fleet.
    #[must_use]
    pub fn total_ranks(&self) -> u32 {
        self.shards() * self.ranks_per_shard
    }

    /// Replaces the tenant count.
    #[must_use]
    pub fn with_tenants(mut self, tenants: u32) -> Self {
        self.tenants = tenants;
        self
    }

    /// Replaces the total request count.
    #[must_use]
    pub fn with_requests(mut self, requests: u64) -> Self {
        self.requests = requests;
        self
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the fault configuration.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the SLO.
    #[must_use]
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = slo;
        self
    }

    /// Replaces the fleet geometry.
    #[must_use]
    pub fn with_fleet(mut self, channels: u32, dimms: u32, ranks_per_shard: u32) -> Self {
        self.channels = channels;
        self.dimms = dimms;
        self.ranks_per_shard = ranks_per_shard;
        self
    }

    /// Checks internal consistency of the whole tier configuration.
    pub fn validate(&self) -> Result<()> {
        if self.tenants == 0 {
            return Err(ConfigError::new("serve tier needs at least one tenant"));
        }
        if self.channels == 0 || self.dimms == 0 || self.ranks_per_shard == 0 {
            return Err(ConfigError::new("fleet geometry must be non-zero"));
        }
        if self.requests == 0 {
            return Err(ConfigError::new("serve run needs at least one request"));
        }
        if self.read_fraction_bp > BP_SCALE {
            return Err(ConfigError::new("read fraction exceeds 100%"));
        }
        if self.ingress_cap == 0 {
            return Err(ConfigError::new("ingress queue needs at least one entry"));
        }
        if self.backpressure_high > self.ingress_cap {
            return Err(ConfigError::new(
                "backpressure high watermark exceeds the ingress cap",
            ));
        }
        if self.backpressure_low >= self.backpressure_high {
            return Err(ConfigError::new(
                "backpressure low watermark must sit below the high watermark",
            ));
        }
        if self.deadline == 0 {
            return Err(ConfigError::new("request deadline must be positive"));
        }
        if self.retry_backoff == 0 && self.retry_budget > 0 {
            return Err(ConfigError::new("retry backoff must be positive"));
        }
        if self.service_read == 0 || self.service_write == 0 {
            return Err(ConfigError::new("service occupancies must be positive"));
        }
        if self.class_mix_bp.iter().sum::<u32>() != BP_SCALE {
            return Err(ConfigError::new("class mix must sum to 10000 basis points"));
        }
        for spec in &self.tenant_template {
            spec.validate()?;
        }
        self.slo.validate()?;
        self.faults.validate()?;
        Ok(())
    }
}

/// Conserved outcome ledger of a serve run (or of one shard of it).
///
/// Every generated request ends in exactly one terminal bucket:
/// retired, one of the shed classes, or failed-visibly. The fleet
/// asserts [`Self::conserved`] before reporting — an unaccounted
/// request is a bug, not a statistic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests generated by the tenant arrival streams.
    pub generated: u64,
    /// Requests that passed admission into an ingress queue (counted
    /// once per request, not per retry).
    pub admitted: u64,
    /// Requests completed by a service lane.
    pub retired: u64,
    /// Requests shed because the tenant's token bucket was empty.
    pub shed_throttled: u64,
    /// Requests shed because the ingress queue was at its hard cap.
    pub shed_overflow: u64,
    /// Requests shed by the degradation ladder (admit-critical-only or
    /// full shed).
    pub shed_degraded: u64,
    /// Requests that exhausted deadline + retry budget while queued.
    pub shed_deadline: u64,
    /// Requests failed upward visibly after service-side faults
    /// exhausted the retry budget.
    pub failed: u64,
    /// Re-admissions taken (timeout or failed service; not terminal).
    pub retries: u64,
    /// Arrivals deferred (with backoff) because backpressure was
    /// asserted; not terminal.
    pub deferrals: u64,
    /// Retired requests that met the SLO target.
    pub slo_ok: u64,
    /// Highest ingress-queue occupancy observed on any shard; must stay
    /// at or under the configured cap.
    pub peak_ingress: u64,
}

impl ServeSummary {
    /// Total shed across all shed classes.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed_throttled + self.shed_overflow + self.shed_degraded + self.shed_deadline
    }

    /// The conservation invariant: every generated request reached
    /// exactly one terminal outcome.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.generated == self.retired + self.shed_total() + self.failed
    }

    /// SLO attainment in basis points of retired requests (full scale
    /// when nothing retired).
    #[must_use]
    pub fn slo_attainment_bp(&self) -> u32 {
        if self.retired == 0 {
            return BP_SCALE;
        }
        let bp = self.slo_ok.saturating_mul(u64::from(BP_SCALE)) / self.retired;
        // Attainment is a ratio of two u64 counters scaled to <= 10_000.
        bp.min(u64::from(BP_SCALE)) as u32
    }

    /// Accumulates another summary: counters add, peaks take the max.
    pub fn merge(&mut self, other: &ServeSummary) {
        self.generated += other.generated;
        self.admitted += other.admitted;
        self.retired += other.retired;
        self.shed_throttled += other.shed_throttled;
        self.shed_overflow += other.shed_overflow;
        self.shed_degraded += other.shed_degraded;
        self.shed_deadline += other.shed_deadline;
        self.failed += other.failed;
        self.retries += other.retries;
        self.deferrals += other.deferrals;
        self.slo_ok += other.slo_ok;
        self.peak_ingress = self.peak_ingress.max(other.peak_ingress);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServeConfig::paper_default().validate().unwrap();
        ServeConfig::soak().validate().unwrap();
    }

    #[test]
    fn soak_profile_hits_issue_scale() {
        let cfg = ServeConfig::soak();
        assert!(cfg.requests >= 1_000_000);
        assert!(cfg.tenants >= 1_000);
        assert!(cfg.total_ranks() >= 100, "hundreds of ranks");
        assert!(cfg.faults.enabled());
    }

    #[test]
    fn validation_rejects_bad_watermarks() {
        let mut cfg = ServeConfig::paper_default();
        cfg.backpressure_low = cfg.backpressure_high;
        assert!(cfg.validate().is_err());
        let mut cfg = ServeConfig::paper_default();
        cfg.backpressure_high = cfg.ingress_cap + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_mix() {
        let mut cfg = ServeConfig::paper_default();
        cfg.class_mix_bp = [5_000, 5_000, 1];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn summary_conservation_and_merge() {
        let mut a = ServeSummary {
            generated: 10,
            admitted: 8,
            retired: 6,
            shed_throttled: 1,
            shed_overflow: 1,
            shed_degraded: 0,
            shed_deadline: 1,
            failed: 1,
            retries: 2,
            deferrals: 3,
            slo_ok: 5,
            peak_ingress: 7,
        };
        assert!(a.conserved());
        let b = ServeSummary {
            generated: 4,
            retired: 4,
            peak_ingress: 9,
            slo_ok: 4,
            ..ServeSummary::default()
        };
        a.merge(&b);
        assert!(a.conserved());
        assert_eq!(a.generated, 14);
        assert_eq!(a.peak_ingress, 9);
        assert_eq!(a.slo_attainment_bp(), 9 * 10_000 / 10);
    }

    #[test]
    fn class_round_trip() {
        for c in TenantClass::ALL {
            assert_eq!(TenantClass::ALL[c.index()], c);
            assert!(!c.as_str().is_empty());
        }
    }
}
