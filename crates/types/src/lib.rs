//! Shared foundation types for the PCMap memory-system simulator.
//!
//! This crate holds the vocabulary used by every other layer of the
//! reproduction of *"Boosting Access Parallelism to PCM-based Main Memory"*
//! (ISCA 2016): physical addresses and their decomposition into
//! channel/rank/bank/row/column coordinates, 64-byte cache lines with
//! word-granular diffing, small bit-sets over words and chips, simulation
//! time in memory cycles, the hardware organization and timing parameter
//! blocks from Table I of the paper, and a deterministic random number
//! generator so simulation outputs are bit-reproducible.
//!
//! # Example
//!
//! ```
//! use pcmap_types::{CacheLine, MemOrg, PhysAddr};
//!
//! let org = MemOrg::paper_default();
//! let addr = PhysAddr::new(0x4040);
//! let loc = org.decode(addr);
//! assert_eq!(loc.line_offset, 0);
//!
//! let mut old = CacheLine::zeroed();
//! let mut new = CacheLine::zeroed();
//! new.set_word(3, 0xdead_beef);
//! // Only word 3 differs, so only one chip would be involved in the write.
//! assert_eq!(old.diff_words(&new).count(), 1);
//! # let _ = (loc, &mut old);
//! ```

#![warn(missing_docs)]
#![deny(unused_must_use)]

pub mod addr;
pub mod config;
pub mod error;
pub mod faults;
pub mod ids;
pub mod line;
pub mod rng;
pub mod serve;
pub mod set;
pub mod time;

pub use addr::{LineAddr, MemLocation, PhysAddr};
pub use config::{CpuParams, MemOrg, QueueParams, TimingParams};
pub use error::{ConfigError, Result};
pub use faults::FaultConfig;
pub use ids::{BankId, ChannelId, ChipId, ColAddr, CoreId, RankId, RowAddr, WordIdx};
pub use line::{CacheLine, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES};
pub use rng::{SplitMix64, Xoshiro256};
pub use serve::{ServeConfig, ServeSummary, SloSpec, TenantClass, TenantSpec};
pub use set::{ChipSet, WordMask};
pub use time::{Cycle, Duration, MEM_CLOCK_MHZ};
