//! 64-byte cache lines with 8-byte word granularity.
//!
//! PCMap's central observation is made at the granularity of the 8-byte
//! *word*: the slice of a cache line that maps onto one ×8 chip of the rank.
//! [`CacheLine`] stores real bytes so that differential writes ("essential
//! word" detection) are computed from data, never assumed.

use crate::set::WordMask;
use core::fmt;

/// Bytes per cache line (the paper uses 64 B lines throughout).
pub const LINE_BYTES: usize = 64;
/// Bytes per word — the slice of a line owned by one ×8 chip.
pub const WORD_BYTES: usize = 8;
/// Words per cache line.
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;

/// A 64-byte cache line holding real data.
///
/// Words are addressed logically (word 0 = bytes 0..8). The mapping of
/// logical words onto physical chips is a layout concern handled by
/// `pcmap-core`'s rotation schemes, not by this type.
///
/// # Example
///
/// ```
/// use pcmap_types::CacheLine;
///
/// let mut line = CacheLine::zeroed();
/// line.set_word(2, 0xffee_ddcc);
/// assert_eq!(line.word(2), 0xffee_ddcc);
/// assert_eq!(line.word(3), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLine {
    words: [u64; WORDS_PER_LINE],
}

impl CacheLine {
    /// A line of all zero bytes.
    #[inline]
    pub fn zeroed() -> Self {
        Self {
            words: [0; WORDS_PER_LINE],
        }
    }

    /// Builds a line from eight words (word 0 first).
    #[inline]
    pub fn from_words(words: [u64; WORDS_PER_LINE]) -> Self {
        Self { words }
    }

    /// Builds a deterministic pseudo-random line from a seed; used by tests
    /// and workload generators to fabricate distinct contents cheaply.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = crate::rng::SplitMix64::new(seed);
        let mut words = [0u64; WORDS_PER_LINE];
        for w in &mut words {
            *w = rng.next_u64();
        }
        Self { words }
    }

    /// Returns word `idx` (0..8).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn word(&self, idx: usize) -> u64 {
        self.words[idx]
    }

    /// Sets word `idx` (0..8) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    #[inline]
    pub fn set_word(&mut self, idx: usize, value: u64) {
        self.words[idx] = value;
    }

    /// Returns the eight words as a slice.
    #[inline]
    pub fn words(&self) -> &[u64; WORDS_PER_LINE] {
        &self.words
    }

    /// Returns the set of word slots whose contents differ from `other`.
    ///
    /// This is exactly the paper's *essential word* computation: in a write
    /// of `other` over `self`, only the returned words need to touch PCM.
    pub fn diff_words(&self, other: &CacheLine) -> WordMask {
        let mut mask = WordMask::empty();
        for i in 0..WORDS_PER_LINE {
            if self.words[i] != other.words[i] {
                mask.insert(i);
            }
        }
        mask
    }

    /// Returns the number of *bits* that differ from `other` — the quantity
    /// a differential write actually programs into the PCM array.
    pub fn diff_bits(&self, other: &CacheLine) -> u32 {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Copies the words selected by `mask` from `src` into `self`, leaving
    /// the other words untouched (a fine-grained partial write).
    pub fn merge_words(&mut self, src: &CacheLine, mask: WordMask) {
        for i in mask.iter() {
            self.words[i] = src.words[i];
        }
    }

    /// XOR of all eight words — the PCC (parity-correction-code) word stored
    /// on the tenth chip of a PCMap rank.
    pub fn parity_word(&self) -> u64 {
        self.words.iter().fold(0, |acc, w| acc ^ w)
    }

    /// Serializes to 64 little-endian bytes.
    pub fn to_bytes(&self) -> [u8; LINE_BYTES] {
        let mut out = [0u8; LINE_BYTES];
        for (i, w) in self.words.iter().enumerate() {
            out[i * WORD_BYTES..(i + 1) * WORD_BYTES].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from 64 little-endian bytes.
    pub fn from_bytes(bytes: &[u8; LINE_BYTES]) -> Self {
        let mut words = [0u64; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            let mut buf = [0u8; WORD_BYTES];
            buf.copy_from_slice(&bytes[i * WORD_BYTES..(i + 1) * WORD_BYTES]);
            *w = u64::from_le_bytes(buf);
        }
        Self { words }
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CacheLine[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_line_is_all_zero() {
        let line = CacheLine::zeroed();
        assert!(line.words().iter().all(|&w| w == 0));
        assert_eq!(line.parity_word(), 0);
    }

    #[test]
    fn diff_words_finds_exactly_changed_slots() {
        let a = CacheLine::zeroed();
        let mut b = a;
        b.set_word(1, 5);
        b.set_word(6, 9);
        let mask = a.diff_words(&b);
        assert_eq!(mask.count(), 2);
        assert!(mask.contains(1));
        assert!(mask.contains(6));
        assert!(!mask.contains(0));
    }

    #[test]
    fn diff_bits_counts_flipped_bits() {
        let a = CacheLine::zeroed();
        let mut b = a;
        b.set_word(0, 0b1011);
        assert_eq!(a.diff_bits(&b), 3);
    }

    #[test]
    fn merge_words_applies_only_masked_words() {
        let old = CacheLine::from_seed(1);
        let new = CacheLine::from_seed(2);
        let mut merged = old;
        let mut mask = WordMask::empty();
        mask.insert(0);
        mask.insert(4);
        merged.merge_words(&new, mask);
        assert_eq!(merged.word(0), new.word(0));
        assert_eq!(merged.word(4), new.word(4));
        assert_eq!(merged.word(1), old.word(1));
        assert_eq!(merged.word(7), old.word(7));
    }

    #[test]
    fn parity_word_reconstructs_any_erased_word() {
        let line = CacheLine::from_seed(42);
        let parity = line.parity_word();
        for missing in 0..WORDS_PER_LINE {
            let mut acc = parity;
            for i in 0..WORDS_PER_LINE {
                if i != missing {
                    acc ^= line.word(i);
                }
            }
            assert_eq!(acc, line.word(missing), "erased word {missing}");
        }
    }

    #[test]
    fn byte_roundtrip() {
        let line = CacheLine::from_seed(7);
        assert_eq!(CacheLine::from_bytes(&line.to_bytes()), line);
    }

    #[test]
    fn seeded_lines_are_deterministic_and_distinct() {
        assert_eq!(CacheLine::from_seed(3), CacheLine::from_seed(3));
        assert_ne!(CacheLine::from_seed(3), CacheLine::from_seed(4));
    }
}
