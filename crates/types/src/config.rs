//! Hardware organization and timing parameter blocks.
//!
//! Defaults reproduce Table I of the paper: an 8-core 2.5 GHz processor with
//! four memory channels, one rank of ×8 PCM chips per channel, eight banks,
//! and PCM cell timings of 60 ns read / 50 ns RESET / 120 ns SET at a
//! 400 MHz memory clock.

use crate::error::{ConfigError, Result};
use crate::time::Duration;

/// Physical organization of the PCM main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOrg {
    /// Independent memory channels (each with its own controller).
    pub channels: u8,
    /// Ranks per channel.
    pub ranks_per_channel: u8,
    /// Banks per rank (each bank spans all chips of the rank).
    pub banks: u8,
    /// Data chips per rank (8 × ×8 chips feed the 64-bit bus).
    pub data_chips: u8,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Cache lines per row (8 KB row / 64 B line = 128).
    pub lines_per_row: u32,
}

impl MemOrg {
    /// Table I organization: 4 channels × 1 rank × 8 banks, 8 data chips,
    /// 8 KB rows, 8 GB total.
    pub fn paper_default() -> Self {
        Self {
            channels: 4,
            ranks_per_channel: 1,
            banks: 8,
            data_chips: 8,
            // 8 GiB / (4ch · 1rk · 8bk · 128 lines · 64 B) = 32768 rows.
            rows_per_bank: 32_768,
            lines_per_row: 128,
        }
    }

    /// A deliberately tiny organization for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            channels: 1,
            ranks_per_channel: 1,
            banks: 2,
            data_chips: 8,
            rows_per_bank: 16,
            lines_per_row: 8,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero or if the design has
    /// a data-chip count other than 8 (the PCMap layouts are specified for
    /// 8-data-chip ranks).
    pub fn validate(&self) -> Result<()> {
        if self.channels == 0
            || self.ranks_per_channel == 0
            || self.banks == 0
            || self.rows_per_bank == 0
            || self.lines_per_row == 0
        {
            return Err(ConfigError::new("memory organization has a zero dimension"));
        }
        if self.data_chips != 8 {
            return Err(ConfigError::new(
                "PCMap layouts require exactly 8 data chips per rank",
            ));
        }
        Ok(())
    }
}

impl Default for MemOrg {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// PCM/DDR3 timing parameters, in memory cycles at 400 MHz (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Row-to-column delay: activate → array data in row buffer.
    pub t_rcd: u64,
    /// CAS (column read) latency: column command → first data beat.
    pub t_cl: u64,
    /// Write latency: column write command → first data beat.
    pub t_wl: u64,
    /// Column-to-column delay (burst gap on the data bus).
    pub t_ccd: u64,
    /// Write-to-read bus turnaround.
    pub t_wtr: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Precharge (row close) latency. For PCM this is the array write-back
    /// window of the open row.
    pub t_rp: u64,
    /// Activate-to-activate spacing after an activate.
    pub t_rrd_act: u64,
    /// Activate-to-activate spacing after a precharge.
    pub t_rrd_pre: u64,
    /// Burst length in data-bus cycles (burst of 8 on a DDR bus = 4 cycles).
    pub burst: u64,
    /// PCM array read time (60 ns = 24 cycles).
    pub array_read: u64,
    /// PCM cell RESET (fast, 50 ns = 20 cycles).
    pub array_reset: u64,
    /// PCM cell SET (slow, 120 ns = 48 cycles).
    pub array_set: u64,
    /// `Status` command round trip to the DIMM register (2 cycles, §IV-D1).
    pub status_cmd: u64,
}

impl TimingParams {
    /// Table I values.
    pub fn paper_default() -> Self {
        Self {
            t_rcd: 60,
            t_cl: 5,
            t_wl: 4,
            t_ccd: 4,
            t_wtr: 4,
            t_rtp: 3,
            t_rp: 60,
            t_rrd_act: 2,
            t_rrd_pre: 11,
            burst: 4,
            array_read: 24,  // 60 ns
            array_reset: 20, // 50 ns
            array_set: 48,   // 120 ns
            status_cmd: 2,
        }
    }

    /// The worst-case per-chip array write time (a SET-dominated write, as
    /// the paper assumes for its default 2× write:read ratio).
    #[inline]
    pub fn array_write(&self) -> Duration {
        Duration(self.array_set)
    }

    /// The array read time as a duration.
    #[inline]
    pub fn array_read_dur(&self) -> Duration {
        Duration(self.array_read)
    }

    /// Builds the Table III sensitivity variant: write latency pinned at
    /// 120 ns (48 cycles) and read latency scaled so that
    /// `write : read = ratio : 1`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn with_write_to_read_ratio(mut self, ratio: u64) -> Self {
        assert!(ratio > 0, "ratio must be positive");
        self.array_set = 48;
        self.array_reset = 48.min(self.array_reset);
        self.array_read = (48 / ratio).max(1);
        self
    }

    /// Symmetric-PCM variant used by Figure 1's normalization baseline:
    /// writes take exactly as long as reads.
    pub fn symmetric(mut self) -> Self {
        self.array_set = self.array_read;
        self.array_reset = self.array_read;
        self
    }

    /// Validates that latencies are physically sensible.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any latency is zero or the SET time is
    /// shorter than the RESET time.
    pub fn validate(&self) -> Result<()> {
        if self.array_read == 0 || self.array_set == 0 || self.array_reset == 0 || self.burst == 0 {
            return Err(ConfigError::new("timing parameters must be positive"));
        }
        if self.array_set < self.array_reset {
            return Err(ConfigError::new("PCM SET must not be faster than RESET"));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Controller queue sizing and the write-drain policy watermarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueParams {
    /// Read queue entries per controller (Table I: 8).
    pub read_q: usize,
    /// Write queue entries per controller (Table I: 32).
    pub write_q: usize,
    /// Fraction of write-queue occupancy that triggers a drain (α = 0.80).
    pub drain_high: f64,
    /// Occupancy fraction at which a drain stops and reads resume.
    pub drain_low: f64,
}

impl QueueParams {
    /// Table I / §V values: 8-entry read queue, 32-entry write queue,
    /// α = 80 % high watermark, 20 % low watermark.
    pub fn paper_default() -> Self {
        Self {
            read_q: 8,
            write_q: 32,
            drain_high: 0.80,
            drain_low: 0.20,
        }
    }

    /// Write-queue occupancy (entries) at which draining starts.
    #[inline]
    pub fn high_entries(&self) -> usize {
        ((self.write_q as f64 * self.drain_high).ceil() as usize).max(1)
    }

    /// Write-queue occupancy (entries) at which draining stops.
    #[inline]
    pub fn low_entries(&self) -> usize {
        (self.write_q as f64 * self.drain_low).floor() as usize
    }

    /// Validates watermark ordering and capacities.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if queues are empty-sized or watermarks are
    /// out of order.
    pub fn validate(&self) -> Result<()> {
        if self.read_q == 0 || self.write_q == 0 {
            return Err(ConfigError::new("queues must have at least one entry"));
        }
        if !(0.0..=1.0).contains(&self.drain_low)
            || !(0.0..=1.0).contains(&self.drain_high)
            || self.drain_low >= self.drain_high
        {
            return Err(ConfigError::new(
                "drain watermarks must satisfy 0 <= low < high <= 1",
            ));
        }
        Ok(())
    }
}

impl Default for QueueParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// CPU-side parameters for the simplified core model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuParams {
    /// Number of cores (Table I: 8).
    pub cores: u8,
    /// CPU clock in MHz (Table I: 2.5 GHz).
    pub cpu_clock_mhz: u64,
    /// Maximum outstanding PCM reads per core before the core stalls
    /// (memory-level parallelism window).
    pub mlp: usize,
    /// Pipeline squash + re-fetch penalty charged per RoW rollback, in CPU
    /// cycles (§IV-B3 / Table IV modeling).
    pub rollback_penalty_cpu_cycles: u64,
    /// Instructions the core can retire past an outstanding read before
    /// the reorder buffer fills behind it (ROB depth / issue width).
    pub read_slack: u64,
}

impl CpuParams {
    /// Table I values with an MLP window of 4 (matching the 4-entry per-bank
    /// read queues) and a 128-cycle rollback penalty (ROB drain + refetch).
    pub fn paper_default() -> Self {
        Self {
            cores: 8,
            cpu_clock_mhz: 2500,
            mlp: 4,
            rollback_penalty_cpu_cycles: 128,
            read_slack: 48,
        }
    }

    /// CPU cycles per memory cycle as an exact rational (25/4 for
    /// 2.5 GHz / 400 MHz).
    #[inline]
    pub fn cpu_cycles_per_mem_cycle(&self) -> (u64, u64) {
        let num = self.cpu_clock_mhz;
        let den = crate::time::MEM_CLOCK_MHZ;
        let g = gcd(num, den);
        (num / g, den / g)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero cores, zero clock, or zero MLP.
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 || self.cpu_clock_mhz == 0 || self.mlp == 0 {
            return Err(ConfigError::new("CPU parameters must be positive"));
        }
        Ok(())
    }
}

impl Default for CpuParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate() {
        MemOrg::paper_default().validate().unwrap();
        TimingParams::paper_default().validate().unwrap();
        QueueParams::paper_default().validate().unwrap();
        CpuParams::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_write_read_ratio_is_two() {
        let t = TimingParams::paper_default();
        assert_eq!(t.array_set, 2 * t.array_read);
    }

    #[test]
    fn ratio_variant_scales_read() {
        let t = TimingParams::paper_default().with_write_to_read_ratio(4);
        assert_eq!(t.array_set, 48);
        assert_eq!(t.array_read, 12);
        let t8 = TimingParams::paper_default().with_write_to_read_ratio(8);
        assert_eq!(t8.array_read, 6);
    }

    #[test]
    fn symmetric_variant_equalizes() {
        let t = TimingParams::paper_default().symmetric();
        assert_eq!(t.array_set, t.array_read);
        assert_eq!(t.array_reset, t.array_read);
    }

    #[test]
    fn drain_watermarks() {
        let q = QueueParams::paper_default();
        assert_eq!(q.high_entries(), 26); // ceil(32 * 0.8)
        assert_eq!(q.low_entries(), 6); // floor(32 * 0.2)
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut org = MemOrg::paper_default();
        org.banks = 0;
        assert!(org.validate().is_err());

        let mut org2 = MemOrg::paper_default();
        org2.data_chips = 4;
        assert!(org2.validate().is_err());

        let mut t = TimingParams::paper_default();
        t.array_set = 1; // faster than RESET
        assert!(t.validate().is_err());

        let mut q = QueueParams::paper_default();
        q.drain_low = 0.9;
        assert!(q.validate().is_err());
    }

    #[test]
    fn clock_ratio_is_25_over_4() {
        let cpu = CpuParams::paper_default();
        assert_eq!(cpu.cpu_cycles_per_mem_cycle(), (25, 4));
    }
}
