//! Error types for configuration validation.

use core::fmt;

/// A convenient result alias for configuration APIs.
pub type Result<T> = core::result::Result<T, ConfigError>;

/// An invalid simulator configuration was supplied.
///
/// Returned by the `validate` methods on [`crate::MemOrg`],
/// [`crate::TimingParams`], [`crate::QueueParams`] and [`crate::CpuParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    /// Creates an error with a static description.
    pub fn new(message: &'static str) -> Self {
        Self { message }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = ConfigError::new("queues must have at least one entry");
        let s = e.to_string();
        assert!(s.starts_with("invalid configuration: "));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_e: &(dyn std::error::Error + Send + Sync)) {}
        let e = ConfigError::new("x");
        takes_err(&e);
        assert_eq!(e.message(), "x");
    }
}
