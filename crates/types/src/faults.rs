//! Fault-injection configuration (DESIGN.md §11).
//!
//! The simulator's speculative machinery — RoW reads reconstructed from
//! the PCC chip, deferred SECDED verification, CPU rollback — is an
//! error-*recovery* protocol, but by default it only ever sees the happy
//! path. [`FaultConfig`] parameterizes a deterministic, seed-driven fault
//! layer (`pcmap-faults`) that exercises it: transient bit flips on chip
//! reads, wear-induced stuck-at cells, chip slow-down / stuck-busy
//! windows, and Status-register poll corruption.
//!
//! The all-zero [`Default`] disables every fault class, and every hook in
//! the stack is inert when faults are disabled, so the byte-identical
//! serial/parallel contract (DESIGN.md §9) and the golden figures are
//! untouched unless a fault rate is explicitly requested.

use crate::error::{ConfigError, Result};

/// Knobs for the deterministic fault injector and its recovery budget.
///
/// All probabilities are per-event (per line read, per word write, per
/// chip occupancy, per Status poll) and are drawn from a dedicated
/// seeded stream, never from OS entropy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a line read suffers a transient bit flip.
    pub rate: f64,
    /// Seed for the fault stream (mixed per channel, independent of the
    /// scheduler/workload seeds).
    pub seed: u64,
    /// Of the transient flips, the fraction that are *double*-bit
    /// (SECDED-uncorrectable) rather than single-bit.
    pub double_bit_fraction: f64,
    /// Probability that a word write wears out one cell, leaving it
    /// stuck at its current value.
    pub stuck_cell_rate: f64,
    /// Probability that a chip array operation runs slow.
    pub chip_slow_rate: f64,
    /// Extra memory cycles a slow chip operation takes.
    pub chip_slow_extra: u64,
    /// Probability that a chip array operation hangs busy until the
    /// watchdog clears it.
    pub chip_stuck_rate: f64,
    /// Probability that an overlapped-issue Status poll is corrupted and
    /// must be repeated (doubling its bus cost).
    pub status_corrupt_rate: f64,
    /// Uncorrectable reads are retried at most this many times before
    /// the request is failed upward.
    pub retry_budget: u32,
    /// Base delay of the exponential retry backoff, in memory cycles
    /// (attempt `k` waits `retry_backoff << k`).
    pub retry_backoff: u64,
    /// Memory cycles past a chip operation's expected end before the
    /// per-rank watchdog force-frees the chip.
    pub watchdog_deadline: u64,
    /// Observed faults within [`Self::degrade_window`] that demote a
    /// rank from RoW/WoW speculation to coarse scheduling.
    pub degrade_threshold: u32,
    /// Sliding window, in memory cycles, over which faults are counted
    /// toward [`Self::degrade_threshold`].
    pub degrade_window: u64,
    /// Fault-free memory cycles after which a degraded rank is
    /// re-promoted to speculative scheduling.
    pub clean_window: u64,
}

impl FaultConfig {
    /// The disabled configuration: no fault class fires and every hook
    /// in the stack stays inert.
    pub fn disabled() -> Self {
        Self {
            rate: 0.0,
            seed: 0,
            double_bit_fraction: 0.0,
            stuck_cell_rate: 0.0,
            chip_slow_rate: 0.0,
            chip_slow_extra: 0,
            chip_stuck_rate: 0.0,
            status_corrupt_rate: 0.0,
            retry_budget: 0,
            retry_backoff: 0,
            watchdog_deadline: 0,
            degrade_threshold: 0,
            degrade_window: 0,
            clean_window: 0,
        }
    }

    /// A storm profile scaled by a single headline `rate`, used by the
    /// `fault_sweep` bench and the `xtask soak` gate: transient flips at
    /// `rate` (30 % of them double-bit), wear/chip/Status faults at a
    /// fraction of it, and paper-plausible recovery budgets.
    pub fn storm(rate: f64, seed: u64) -> Self {
        Self {
            rate,
            seed,
            double_bit_fraction: 0.30,
            stuck_cell_rate: rate / 8.0,
            chip_slow_rate: rate / 4.0,
            chip_slow_extra: 24,
            chip_stuck_rate: rate / 16.0,
            status_corrupt_rate: rate / 2.0,
            retry_budget: 3,
            retry_backoff: 8,
            watchdog_deadline: 256,
            degrade_threshold: 8,
            degrade_window: 4_096,
            clean_window: 8_192,
        }
    }

    /// Whether any fault class can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
            || self.stuck_cell_rate > 0.0
            || self.chip_slow_rate > 0.0
            || self.chip_stuck_rate > 0.0
            || self.status_corrupt_rate > 0.0
    }

    /// Validates probabilities and recovery budgets.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any probability is outside `[0, 1]`,
    /// or if a fault class is enabled without the recovery machinery it
    /// needs (retry budget for uncorrectable reads, watchdog deadline
    /// for stuck chips, degrade windows for the threshold).
    pub fn validate(&self) -> Result<()> {
        let probs = [
            self.rate,
            self.double_bit_fraction,
            self.stuck_cell_rate,
            self.chip_slow_rate,
            self.chip_stuck_rate,
            self.status_corrupt_rate,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err(ConfigError::new(
                "fault probabilities must lie within [0, 1]",
            ));
        }
        if !self.enabled() {
            return Ok(());
        }
        if self.rate > 0.0 && self.double_bit_fraction > 0.0 && self.retry_budget == 0 {
            return Err(ConfigError::new(
                "double-bit faults require a positive retry budget",
            ));
        }
        if self.chip_stuck_rate > 0.0 && self.watchdog_deadline == 0 {
            return Err(ConfigError::new(
                "stuck-busy chips require a positive watchdog deadline",
            ));
        }
        if self.degrade_threshold > 0 && (self.degrade_window == 0 || self.clean_window == 0) {
            return Err(ConfigError::new(
                "degradation threshold requires positive degrade/clean windows",
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        f.validate().unwrap();
    }

    #[test]
    fn storm_is_enabled_and_valid() {
        let f = FaultConfig::storm(1e-3, 7);
        assert!(f.enabled());
        f.validate().unwrap();
    }

    #[test]
    fn zero_rate_storm_is_still_disabled_for_transients() {
        // storm(0) keeps the recovery budgets but fires nothing.
        let f = FaultConfig::storm(0.0, 7);
        assert!(!f.enabled());
        f.validate().unwrap();
    }

    #[test]
    fn out_of_range_probability_rejected() {
        let mut f = FaultConfig::storm(1e-3, 7);
        f.double_bit_fraction = 1.5;
        assert!(f.validate().is_err());
        let mut g = FaultConfig::storm(1e-3, 7);
        g.rate = -0.1;
        assert!(g.validate().is_err());
    }

    #[test]
    fn missing_recovery_budget_rejected() {
        let mut f = FaultConfig::storm(1e-3, 7);
        f.retry_budget = 0;
        assert!(f.validate().is_err());

        let mut g = FaultConfig::storm(1e-3, 7);
        g.watchdog_deadline = 0;
        assert!(g.validate().is_err());

        let mut h = FaultConfig::storm(1e-3, 7);
        h.degrade_window = 0;
        assert!(h.validate().is_err());
    }
}
