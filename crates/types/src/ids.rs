//! Newtype identifiers for hardware coordinates.
//!
//! Using distinct types for channels, ranks, banks, chips, rows, columns,
//! cores and word indices prevents the classic simulator bug of passing a
//! bank index where a chip index was expected ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $short:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A memory channel (the paper's system has 4, one controller each).
    ChannelId, u8, "ch"
);
id_type!(
    /// A rank within a channel (the paper's system has 1 per channel).
    RankId, u8, "rk"
);
id_type!(
    /// A bank within a rank (8 in DDR3-style parts).
    BankId, u8, "bk"
);
id_type!(
    /// A chip (sub-rank) within a rank.
    ///
    /// PCMap ranks have ten chips: eight data chips, one SECDED ECC chip and
    /// one PCC parity chip. Chip indices are *physical*; which logical word
    /// lives on which physical chip is decided by the rotation layout.
    ChipId, u8, "chip"
);
id_type!(
    /// A DRAM/PCM row (page) within a bank.
    RowAddr, u32, "row"
);
id_type!(
    /// A column (cache-line slot) within a row.
    ColAddr, u32, "col"
);
id_type!(
    /// A CPU core.
    CoreId, u8, "core"
);
id_type!(
    /// A logical 8-byte word slot within a 64-byte cache line (0..=7).
    WordIdx, u8, "w"
);

impl ChipId {
    /// Number of data chips in a PCMap rank.
    pub const DATA_CHIPS: usize = 8;
    /// Total chips in a PCMap rank (8 data + ECC + PCC).
    pub const TOTAL_CHIPS: usize = 10;

    /// The dedicated SECDED ECC chip in the non-rotated layout.
    pub const ECC: ChipId = ChipId(8);
    /// The dedicated parity-correction (PCC) chip in the non-rotated layout.
    pub const PCC: ChipId = ChipId(9);

    /// Returns `true` if this chip holds data words in the non-rotated
    /// layout (indices `0..8`).
    #[inline]
    pub fn is_data_fixed_layout(self) -> bool {
        (self.0 as usize) < Self::DATA_CHIPS
    }
}

impl WordIdx {
    /// Iterates over all eight word slots of a cache line.
    pub fn all() -> impl Iterator<Item = WordIdx> {
        (0..8u8).map(WordIdx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ChannelId(2).to_string(), "ch2");
        assert_eq!(ChipId::ECC.to_string(), "chip8");
        assert_eq!(WordIdx(7).to_string(), "w7");
    }

    #[test]
    fn chip_roles() {
        assert!(ChipId(0).is_data_fixed_layout());
        assert!(ChipId(7).is_data_fixed_layout());
        assert!(!ChipId::ECC.is_data_fixed_layout());
        assert!(!ChipId::PCC.is_data_fixed_layout());
    }

    #[test]
    fn word_idx_enumerates_eight() {
        let all: Vec<_> = WordIdx::all().collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], WordIdx(0));
        assert_eq!(all[7], WordIdx(7));
    }

    #[test]
    fn ordering_and_index() {
        assert!(BankId(1) < BankId(3));
        assert_eq!(RowAddr(42).index(), 42);
        assert_eq!(ChipId::from(4u8), ChipId(4));
    }
}
