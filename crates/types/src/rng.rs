//! Deterministic pseudo-random number generation.
//!
//! Simulation results must be bit-reproducible across machines and across
//! dependency upgrades, so the simulator carries its own small generators —
//! SplitMix64 (for seeding and cheap one-shot streams) and xoshiro256\*\*
//! (the workhorse stream generator) — instead of relying on a particular
//! version of the `rand` crate's stream layout. `rand`/`proptest` are still
//! used in tests, where stream stability does not matter.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`], and for cheap derived streams (e.g. fabricating cache
/// line contents from an address).
///
/// # Example
///
/// ```
/// use pcmap_types::SplitMix64;
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the simulator's primary stream generator.
///
/// Fast, 256 bits of state, passes BigCrush; the reference algorithm of
/// Blackman & Vigna. Each workload generator and each core owns an
/// independently seeded instance, so per-component streams are stable even
/// when components are added or reordered.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding `seed` through SplitMix64 as the
    /// reference implementation recommends.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method
    /// (bias is negligible for simulator purposes: < 2⁻⁶⁴·bound).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an index from a discrete distribution given by `weights`
    /// (need not be normalized). Returns the last index if rounding pushes
    /// the draw past the accumulated total.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut draw = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            draw -= w;
            if draw < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Geometric-like draw: number of failures before a success with
    /// probability `p` per trial, capped at `cap` to bound tail latency.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - p).ln()).floor() as u64;
        k.min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567, from the public-domain reference.
        let mut g = SplitMix64::new(1234567);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Determinism across instances.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), a);
        assert_eq!(h.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = Xoshiro256::new(5);
        for _ in 0..10_000 {
            assert!(g.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256::new(6);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn sample_weighted_honors_zero_weights() {
        let mut g = Xoshiro256::new(7);
        for _ in 0..1_000 {
            let i = g.sample_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn sample_weighted_rough_proportions() {
        let mut g = Xoshiro256::new(8);
        let mut counts = [0u32; 2];
        for _ in 0..20_000 {
            counts[g.sample_weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut g = Xoshiro256::new(9);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
    }

    #[test]
    fn geometric_mean_close_to_expectation() {
        let mut g = Xoshiro256::new(10);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| g.geometric(p, 1_000)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p; // = 3
        assert!((mean - expect).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_certain_success_is_zero() {
        let mut g = Xoshiro256::new(11);
        assert_eq!(g.geometric(1.0, 10), 0);
    }
}
