//! Property tests over the foundation types.

use pcmap_types::{
    CacheLine, ChipSet, Cycle, Duration, MemOrg, PhysAddr, SplitMix64, WordMask, Xoshiro256,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn addr_decode_encode_round_trip(line in 0u64..(1 << 27)) {
        let org = MemOrg::paper_default();
        let addr = PhysAddr::new(line * 64);
        let loc = org.decode(addr);
        let back = org.encode(loc.channel, loc.rank, loc.bank, loc.row, loc.col);
        prop_assert_eq!(back, addr.line());
    }

    #[test]
    fn decode_is_total_and_in_range(raw: u64) {
        let org = MemOrg::paper_default();
        let loc = org.decode(PhysAddr::new(raw));
        prop_assert!(loc.channel.index() < org.channels as usize);
        prop_assert!(loc.bank.index() < org.banks as usize);
        prop_assert!((loc.row.0 as u64) < org.rows_per_bank as u64);
        prop_assert!((loc.col.0 as u64) < org.lines_per_row as u64);
        prop_assert!(loc.line_offset < 64);
    }

    #[test]
    fn diff_words_matches_merge(seed_a: u64, seed_b: u64, bits in 0u16..256) {
        let a = CacheLine::from_seed(seed_a);
        let b = CacheLine::from_seed(seed_b);
        let mask = WordMask::from_bits(bits);
        // Merging b's masked words into a, then diffing, gives a subset of
        // the mask (equal when the selected words actually differ).
        let mut merged = a;
        merged.merge_words(&b, mask);
        let diff = a.diff_words(&merged);
        prop_assert!(diff.is_subset(mask));
        // And re-merging the diff reproduces `merged` exactly.
        let mut again = a;
        again.merge_words(&merged, diff);
        prop_assert_eq!(again, merged);
    }

    #[test]
    fn parity_tracks_any_merge(seed_a: u64, seed_b: u64, bits in 0u16..256) {
        let a = CacheLine::from_seed(seed_a);
        let b = CacheLine::from_seed(seed_b);
        let mut merged = a;
        merged.merge_words(&b, WordMask::from_bits(bits));
        let mut expect = 0u64;
        for i in 0..8 {
            expect ^= merged.word(i);
        }
        prop_assert_eq!(merged.parity_word(), expect);
    }

    #[test]
    fn wordmask_set_algebra(a in 0u16..256, b in 0u16..256) {
        let ma = WordMask::from_bits(a);
        let mb = WordMask::from_bits(b);
        prop_assert_eq!((ma | mb).count() + (ma & mb).count(), ma.count() + mb.count());
        prop_assert!(ma.is_subset(ma | mb));
        prop_assert!((ma & mb).is_subset(ma));
        prop_assert_eq!(!(!ma), ma);
        prop_assert_eq!(ma.is_disjoint(mb), (ma & mb).is_empty());
    }

    #[test]
    fn chipset_iteration_matches_membership(bits in 0u16..1024) {
        let s = ChipSet::from_bits(bits);
        let collected: ChipSet = s.iter().collect();
        prop_assert_eq!(collected, s);
        prop_assert_eq!(s.iter().count(), s.count());
    }

    #[test]
    fn duration_nanos_round_up(ns in 0u64..1_000_000) {
        let d = Duration::from_nanos(ns);
        prop_assert!(d.as_nanos() >= ns as f64);
        prop_assert!(d.as_nanos() - (ns as f64) < 2.5);
    }

    #[test]
    fn cycle_since_is_saturating(a: u32, b: u32) {
        let (a, b) = (Cycle(a as u64), Cycle(b as u64));
        let d = a.since(b);
        if a >= b {
            prop_assert_eq!(d.as_u64(), a.as_u64() - b.as_u64());
        } else {
            prop_assert_eq!(d, Duration::ZERO);
        }
    }

    #[test]
    fn rng_streams_are_independent(seed: u64) {
        let mut a = Xoshiro256::new(seed);
        let mut b = Xoshiro256::new(seed.wrapping_add(1));
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        prop_assert!(same < 4, "adjacent seeds must not correlate");
    }

    #[test]
    fn splitmix_has_no_short_cycles(seed: u64) {
        let mut g = SplitMix64::new(seed);
        let first = g.next_u64();
        for _ in 0..64 {
            prop_assert_ne!(g.next_u64(), first);
        }
    }

    #[test]
    fn line_bytes_round_trip(seed: u64) {
        let line = CacheLine::from_seed(seed);
        prop_assert_eq!(CacheLine::from_bytes(&line.to_bytes()), line);
    }
}
