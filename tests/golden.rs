//! Golden-number regression tests: the headline scalars behind Figure 8
//! (IRLP), Figure 10 (read latency), and Table IV (rollback cost) are
//! snapshotted into `tests/golden/*.json`. A future PR that changes any
//! of these numbers — a scheduling tweak, an RNG re-seed, a parallelism
//! bug — fails here instead of silently shifting the paper's results.
//!
//! The runs are deterministic, so the tolerance is tight (relative 1e-6,
//! just enough to forgive JSON float round-tripping). To re-bless after
//! an *intentional* change: `UPDATE_GOLDEN=1 cargo test --test golden`
//! and commit the diff with the justification.

use pcmap::core::{RollbackMode, SystemKind};
use pcmap::obs::{json, Value};
use pcmap::sim::{RunReport, SimConfig, System};
use pcmap::workloads::catalog;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Small enough to keep the suite fast, large enough that every headline
/// mechanism (drains, RoW, WoW, rollbacks) engages.
const REQUESTS: u64 = 1_000;
const REL_TOL: f64 = 1e-6;

fn run_at(kind: SystemKind, workload: &str, rollback: RollbackMode, requests: u64) -> RunReport {
    let wl = catalog::by_name(workload).expect("catalog workload");
    let cfg = SimConfig::paper_default(kind)
        .with_requests(requests)
        .with_rollback(rollback);
    System::new(cfg, wl).run()
}

fn run(kind: SystemKind, workload: &str, rollback: RollbackMode) -> RunReport {
    run_at(kind, workload, rollback, REQUESTS)
}

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(file)
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Compares `got` against the snapshot in `tests/golden/<file>`, or
/// rewrites the snapshot when `UPDATE_GOLDEN` is set.
fn check_golden(file: &str, got: &BTreeMap<String, f64>) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut obj = Value::obj();
        for (k, &v) in got {
            obj.set(k, Value::F64(v));
        }
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, obj.to_json_string()).expect("write golden");
        eprintln!("blessed {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    let want = json::parse(&text).expect("golden file parses");
    for (key, &g) in got {
        let w = want
            .get(key)
            .and_then(as_f64)
            .unwrap_or_else(|| panic!("{file}: golden is missing key '{key}' — re-bless"));
        let tol = REL_TOL * w.abs().max(1.0);
        assert!(
            (g - w).abs() <= tol,
            "{file}: '{key}' drifted: got {g}, golden {w} (tol {tol:e})"
        );
    }
    // Symmetric check: a metric that vanished from the suite is as
    // suspicious as one that drifted.
    if let Value::Obj(entries) = &want {
        for (key, _) in entries {
            assert!(
                got.contains_key(key),
                "{file}: golden key '{key}' no longer measured — re-bless"
            );
        }
    }
}

/// Figure 8 headline: mean and max IRLP per system on canneal.
#[test]
fn golden_fig08_irlp_scalars() {
    let mut got = BTreeMap::new();
    for kind in [
        SystemKind::Baseline,
        SystemKind::WowNr,
        SystemKind::RwowRd,
        SystemKind::RwowRde,
    ] {
        let r = run(kind, "canneal", RollbackMode::NeverFaulty);
        got.insert(format!("canneal/{}/irlp_mean", kind.label()), r.irlp_mean);
        got.insert(format!("canneal/{}/irlp_max", kind.label()), r.irlp_max);
    }
    check_golden("fig08.json", &got);
}

/// Figure 10 headline: mean and p95 effective read latency, baseline vs
/// full PCMap, on the two equivalence-suite workloads.
#[test]
fn golden_fig10_read_latency_scalars() {
    let mut got = BTreeMap::new();
    for workload in ["canneal", "streamcluster"] {
        for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
            let r = run(kind, workload, RollbackMode::NeverFaulty);
            got.insert(
                format!("{workload}/{}/mean_read_latency", kind.label()),
                r.mean_read_latency,
            );
            got.insert(
                format!("{workload}/{}/p95_read_latency", kind.label()),
                r.p95_read_latency as f64,
            );
        }
    }
    check_golden("fig10.json", &got);
}

/// Table IV headline: rollback exposure of the fixed-layout RWoW-NR
/// system under both accounting bounds. MP6 at a slightly larger budget
/// is the smallest Table IV point where rollbacks actually fire under
/// the event-horizon scheduler's interleavings, so the rate anchors are
/// nonzero.
#[test]
fn golden_tab04_rollback_scalars() {
    const TAB04_REQUESTS: u64 = 3_500;
    let base = run_at(
        SystemKind::Baseline,
        "MP6",
        RollbackMode::NeverFaulty,
        TAB04_REQUESTS,
    );
    let faulty = run_at(
        SystemKind::RwowNr,
        "MP6",
        RollbackMode::AlwaysFaulty,
        TAB04_REQUESTS,
    );
    let clean = run_at(
        SystemKind::RwowNr,
        "MP6",
        RollbackMode::NeverFaulty,
        TAB04_REQUESTS,
    );
    let row_reads = faulty.reads_via_row.max(1);
    let mut got = BTreeMap::new();
    got.insert("MP6/rollback_rate".to_owned(), faulty.rollback_rate());
    got.insert(
        "MP6/max_rollback_pct".to_owned(),
        faulty.consumed_before_check as f64 * 100.0 / row_reads as f64,
    );
    got.insert(
        "MP6/faulty_imp_pct".to_owned(),
        (faulty.ipc() / base.ipc() - 1.0) * 100.0,
    );
    got.insert(
        "MP6/none_faulty_imp_pct".to_owned(),
        (clean.ipc() / base.ipc() - 1.0) * 100.0,
    );
    assert!(
        faulty.rollbacks > 0,
        "MP6 at {TAB04_REQUESTS} requests must exercise the rollback path"
    );
    check_golden("tab04.json", &got);
}
