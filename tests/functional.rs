//! Cross-crate functional-correctness tests: data integrity through the
//! whole stack under PCMap scheduling, fault injection, and the
//! cache-hierarchy path.

use pcmap::core::{PcmapController, SystemKind};
use pcmap::cpu::{AccessKind, Hierarchy, HierarchyConfig, MemAccess};
use pcmap::ctrl::{BaselineController, Controller, MemRequest, ReqId, ReqKind};
use pcmap::device::PcmRank;
use pcmap::sim::{SimConfig, System};
use pcmap::types::{
    CacheLine, CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams, Xoshiro256,
};
use pcmap::workloads::catalog;

fn drive(ctrl: &mut dyn Controller, mut now: Cycle) -> Vec<pcmap::ctrl::Completion> {
    let mut out = ctrl.step(now);
    while let Some(wake) = ctrl.next_wake(now) {
        now = wake;
        out.extend(ctrl.step(now));
        assert!(now.0 < 1_000_000, "controller failed to go idle");
    }
    ctrl.settle(Cycle::MAX);
    out
}

/// Writes random data through a controller, reads it back, and checks the
/// stored ECC/PCC words stay consistent — under both controllers.
#[test]
fn storage_consistency_under_scheduling() {
    let org = MemOrg::tiny();
    let t = TimingParams::paper_default();
    let q = QueueParams::paper_default();
    let mut rng = Xoshiro256::new(99);

    let mut check = |ctrl: &mut dyn Controller| {
        let mut expected = Vec::new();
        for k in 0..24u64 {
            let addr = PhysAddr::new(k * 64);
            let loc = org.decode(addr);
            let old = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
            let mut data = old;
            // Dirty 1-3 random words.
            for _ in 0..=rng.next_below(2) {
                let w = rng.next_below(8) as usize;
                data.set_word(w, rng.next_u64());
            }
            let req = MemRequest {
                id: ReqId(k + 1),
                kind: ReqKind::Write { data },
                line: addr.line(),
                loc,
                core: CoreId(0),
                arrival: Cycle(0),
            };
            ctrl.enqueue_write(req, Cycle(0)).expect("queue space");
            expected.push((loc, data));
            if k % 8 == 7 {
                drive(ctrl, Cycle(0));
            }
        }
        drive(ctrl, Cycle(0));
        let codec = ctrl.rank().storage().codec();
        for (loc, data) in expected {
            let got = ctrl.rank().read_line(loc.bank, loc.row, loc.col);
            assert_eq!(got.data, data, "stored data must match the last write");
            assert_eq!(got.ecc, codec.ecc_word(&got.data), "ECC word consistent");
            assert_eq!(got.pcc, codec.pcc_word(&got.data), "PCC word consistent");
            assert!(codec.verify(&got.data, got.ecc).is_clean());
        }
    };

    let mut base = BaselineController::new(org, t, q, 5);
    check(&mut base);
    let mut pcmap = PcmapController::new(SystemKind::RwowRde, org, t, q, 5);
    check(&mut pcmap);
}

/// An injected single-bit fault is corrected on a controller read and
/// counted in the statistics.
#[test]
fn injected_fault_corrected_through_controller_read() {
    let org = MemOrg::tiny();
    let mut ctrl = PcmapController::new(
        SystemKind::RwowRde,
        org,
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        7,
    );
    let addr = PhysAddr::new(0);
    let loc = org.decode(addr);
    ctrl.rank_mut()
        .storage_mut()
        .inject_bit_error(loc.bank, loc.row, loc.col, 2, 33);

    let req = MemRequest {
        id: ReqId(1),
        kind: ReqKind::Read,
        line: addr.line(),
        loc,
        core: CoreId(0),
        arrival: Cycle(0),
    };
    ctrl.enqueue_read(req, Cycle(0)).expect("queue space");
    let out = drive(&mut ctrl, Cycle(0));
    assert_eq!(out.len(), 1);
    assert_eq!(
        ctrl.stats().ecc_corrected,
        1,
        "SECDED must flag the corrected read"
    );
    assert_eq!(ctrl.stats().ecc_uncorrectable, 0);
}

/// Faults injected into a full-system run surface in the report.
#[test]
fn fault_injection_visible_in_system_report() {
    let wl = catalog::by_name("streamcluster").unwrap();
    let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(2_000);
    let mut sys = System::new(cfg, wl);
    // Sprinkle single-bit faults over the first rows of every bank of
    // channel 0 — the workload's footprint starts there.
    {
        let rank = sys.controllers_mut()[0].rank_mut();
        for row in 0..64u32 {
            for col in 0..8u32 {
                rank.storage_mut().inject_bit_error(
                    pcmap::types::BankId((row % 8) as u8),
                    pcmap::types::RowAddr(row),
                    pcmap::types::ColAddr(col),
                    (row % 8) as usize,
                    (col * 7) % 64,
                );
            }
        }
    }
    let report = sys.run();
    assert!(report.reads_completed > 0);
    assert_eq!(
        report.ecc_uncorrectable, 0,
        "single-bit faults are correctable"
    );
    // Some of the faulted lines are eventually read (or rewritten first —
    // either is fine, but the machinery must not crash or corrupt).
}

/// The full CPU-cache-memory functional path: values stored through the
/// hierarchy are read back identically after travelling through PCM.
#[test]
fn hierarchy_round_trips_values_through_pcm() {
    let org = MemOrg::tiny();
    let mut rank = PcmRank::new(org);
    let mut h = Hierarchy::new(HierarchyConfig::small());
    let mut rng = Xoshiro256::new(3);

    // Write distinct values to 2000 addresses (bigger than L1/L2).
    let n = 2_000u64;
    let value_of = |k: u64| k.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for k in 0..n {
        let addr = PhysAddr::new(k * 8); // consecutive words
        let fetch = |a: PhysAddr| {
            let loc = org.decode(a);
            rank.read_line(loc.bank, loc.row, loc.col).data
        };
        let traffic = h.access(addr, AccessKind::Write, Some(value_of(k)), fetch);
        for tr in traffic {
            if let MemAccess::WriteBack(ev) = tr {
                let loc = org.decode(ev.addr);
                rank.write_words(loc.bank, loc.row, loc.col, ev.data, ev.dirty);
            }
        }
        // Interleave random reads of earlier values.
        if k > 0 && rng.chance(0.25) {
            let j = rng.next_below(k);
            let a = PhysAddr::new(j * 8);
            let fetch = |a: PhysAddr| {
                let loc = org.decode(a);
                rank.read_line(loc.bank, loc.row, loc.col).data
            };
            let traffic = h.access(a, AccessKind::Read, None, fetch);
            for tr in traffic {
                if let MemAccess::WriteBack(ev) = tr {
                    let loc = org.decode(ev.addr);
                    rank.write_words(loc.bank, loc.row, loc.col, ev.data, ev.dirty);
                }
            }
        }
    }
    // Flush everything to PCM, then verify directly against storage.
    for ev in h.flush() {
        let loc = org.decode(ev.addr);
        rank.write_words(loc.bank, loc.row, loc.col, ev.data, ev.dirty);
    }
    for k in 0..n {
        let addr = PhysAddr::new(k * 8);
        let loc = org.decode(addr);
        let line = rank.read_line(loc.bank, loc.row, loc.col).data;
        let word = (addr.line_offset()) / 8;
        assert_eq!(line.word(word), value_of(k), "address {k}");
    }
}

/// Read forwarding returns the queued write's data age (the read completes
/// before the write reaches PCM).
#[test]
fn forwarded_reads_complete_fast() {
    let org = MemOrg::tiny();
    let mut ctrl = BaselineController::new(
        org,
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        11,
    );
    let addr = PhysAddr::new(0);
    let loc = org.decode(addr);
    let mut data = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
    data.set_word(0, 0xfeed);
    let w = MemRequest {
        id: ReqId(1),
        kind: ReqKind::Write { data },
        line: addr.line(),
        loc,
        core: CoreId(0),
        arrival: Cycle(0),
    };
    ctrl.enqueue_write(w, Cycle(0)).unwrap();
    let r = MemRequest {
        id: ReqId(2),
        kind: ReqKind::Read,
        ..w
    };
    let fwd = ctrl
        .enqueue_read(r, Cycle(0))
        .unwrap()
        .expect("must forward");
    assert!(fwd.forwarded);
    assert!(fwd.done.0 <= 4, "forwarding is near-instant");
    let _ = CacheLine::zeroed();
}
