//! Cross-crate integration tests: the paper's shape criteria (DESIGN.md §3)
//! must hold end-to-end on the composed system.

use pcmap::core::SystemKind;
use pcmap::sim::{RunReport, SimConfig, System};
use pcmap::types::TimingParams;
use pcmap::workloads::catalog;

fn run(kind: SystemKind, workload: &str, requests: u64) -> RunReport {
    let wl = catalog::by_name(workload).expect("catalog workload");
    System::new(SimConfig::paper_default(kind).with_requests(requests), wl).run()
}

#[test]
fn pcmap_beats_baseline_on_every_headline_metric() {
    let base = run(SystemKind::Baseline, "canneal", 5_000);
    let rde = run(SystemKind::RwowRde, "canneal", 5_000);

    assert!(
        rde.ipc() > base.ipc(),
        "IPC {} vs {}",
        rde.ipc(),
        base.ipc()
    );
    assert!(
        rde.mean_read_latency < base.mean_read_latency,
        "read latency {} vs {}",
        rde.mean_read_latency,
        base.mean_read_latency
    );
    assert!(
        rde.write_throughput > base.write_throughput,
        "write throughput {} vs {}",
        rde.write_throughput,
        base.write_throughput
    );
    assert!(
        rde.irlp_mean > base.irlp_mean,
        "IRLP {} vs {}",
        rde.irlp_mean,
        base.irlp_mean
    );
}

#[test]
fn baseline_irlp_anchors_to_mean_essential_words() {
    // The paper's central observation: with idle chips wasted, IRLP during
    // writes equals the mean number of essential words (~2.4).
    let base = run(SystemKind::Baseline, "canneal", 4_000);
    assert!(
        (base.irlp_mean - base.mean_essential_words).abs() < 0.5,
        "IRLP {} vs essential {}",
        base.irlp_mean,
        base.mean_essential_words
    );
    assert!(
        (1.8..=3.5).contains(&base.irlp_mean),
        "IRLP = {}",
        base.irlp_mean
    );
}

#[test]
fn every_pcmap_variant_beats_baseline_ipc() {
    let base = run(SystemKind::Baseline, "MP4", 5_000).ipc();
    for kind in SystemKind::pcmap_variants() {
        let ipc = run(kind, "MP4", 5_000).ipc();
        assert!(ipc > base, "{kind}: {ipc} vs baseline {base}");
    }
}

#[test]
fn mechanisms_actually_engage() {
    let rde = run(SystemKind::RwowRde, "canneal", 5_000);
    assert!(rde.reads_via_row > 0, "RoW must serve reads");
    assert!(rde.wow_overlaps > 0, "WoW must consolidate writes");
    let row_only = run(SystemKind::RowNr, "canneal", 5_000);
    assert_eq!(
        row_only.wow_overlaps, 0,
        "RoW-NR must never consolidate writes"
    );
    let wow_only = run(SystemKind::WowNr, "canneal", 5_000);
    assert_eq!(wow_only.reads_via_row, 0, "WoW-NR must never overlap reads");
    let base = run(SystemKind::Baseline, "canneal", 5_000);
    assert_eq!(base.reads_via_row + base.wow_overlaps, 0);
}

#[test]
fn irlp_maximum_approaches_eight() {
    // Under the full design some writes see near-full rank utilization
    // (paper: max 7.4 of 8).
    let rde = run(SystemKind::RwowRde, "canneal", 5_000);
    assert!(rde.irlp_max > 6.0, "max IRLP = {}", rde.irlp_max);
    assert!(rde.irlp_max <= 8.0, "IRLP capped at 8");
}

#[test]
fn ratio_sensitivity_holds_up_like_table3() {
    // Table III: PCMap's advantage persists (and tends to grow) as writes
    // get relatively slower. At test scale individual runs are noisy, so
    // assert the robust property: a solid gain at every ratio and no
    // strong inversion between the extremes.
    let wl = "MP4";
    let gain_at = |ratio: u64| {
        let timing = TimingParams::paper_default().with_write_to_read_ratio(ratio);
        let go = |kind: SystemKind| {
            let cfg = SimConfig::paper_default(kind)
                .with_requests(4_000)
                .with_timing(timing);
            System::new(cfg, catalog::by_name(wl).unwrap()).run().ipc()
        };
        go(SystemKind::RwowRde) / go(SystemKind::Baseline)
    };
    let g2 = gain_at(2);
    let g8 = gain_at(8);
    assert!(g2 > 1.03, "gain at 2x = {g2:.3}");
    assert!(g8 > 1.03, "gain at 8x = {g8:.3}");
    assert!(
        g8 > 1.0 + (g2 - 1.0) * 0.5,
        "no strong inversion: g8 {g8:.3} vs g2 {g2:.3}"
    );
}

#[test]
fn asymmetric_writes_delay_reads_like_figure1() {
    // Figure 1's premise: with write latency = 2x read, a visible share of
    // reads queue behind writes, and effective read latency exceeds the
    // symmetric-PCM case.
    let asym = run(SystemKind::Baseline, "mcf", 4_000);
    assert!(
        asym.delayed_read_fraction > 0.05,
        "delayed fraction = {}",
        asym.delayed_read_fraction
    );
    let wl = catalog::by_name("mcf").unwrap();
    let cfg = SimConfig::paper_default(SystemKind::Baseline)
        .with_requests(4_000)
        .with_timing(TimingParams::paper_default().symmetric());
    let sym = System::new(cfg, wl).run();
    assert!(
        asym.mean_read_latency > sym.mean_read_latency,
        "asym {} vs sym {}",
        asym.mean_read_latency,
        sym.mean_read_latency
    );
}

#[test]
fn identical_injection_across_systems() {
    // All six systems must see the same request stream (same seed): the
    // essential-word histograms match exactly.
    let base = run(SystemKind::Baseline, "streamcluster", 3_000);
    for kind in SystemKind::pcmap_variants() {
        let r = run(kind, "streamcluster", 3_000);
        assert_eq!(
            r.essential_histogram, base.essential_histogram,
            "{kind} saw a different write stream"
        );
    }
}

#[test]
fn read_latency_distribution_is_sane_and_typical_case_improves() {
    // PCMap improves the typical read (p50); its tail may trade against
    // drain-mode behaviour but must stay the same order of magnitude.
    let base = run(SystemKind::Baseline, "canneal", 5_000);
    let rde = run(SystemKind::RwowRde, "canneal", 5_000);
    for r in [&base, &rde] {
        assert!(r.p50_read_latency <= r.p95_read_latency);
        assert!(r.p95_read_latency <= r.p99_read_latency);
        assert!(r.p99_read_latency as f64 >= r.mean_read_latency / 4.0);
    }
    assert!(
        base.p99_read_latency > base.p50_read_latency,
        "baseline has a tail"
    );
    assert!(
        rde.p50_read_latency <= base.p50_read_latency,
        "p50 {} vs baseline {}",
        rde.p50_read_latency,
        base.p50_read_latency
    );
    assert!(
        rde.p99_read_latency <= base.p99_read_latency * 3,
        "tail must stay bounded: {} vs {}",
        rde.p99_read_latency,
        base.p99_read_latency
    );
}

#[test]
fn simulation_is_deterministic() {
    let a = run(SystemKind::RwowRde, "dedup", 3_000);
    let b = run(SystemKind::RwowRde, "dedup", 3_000);
    assert_eq!(a.mem_cycles, b.mem_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.reads_via_row, b.reads_via_row);
    assert_eq!(a.wow_overlaps, b.wow_overlaps);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
}
