//! # PCMap — boosting access parallelism to PCM-based main memory
//!
//! A from-scratch Rust reproduction of *"Boosting Access Parallelism to
//! PCM-based Main Memory"* (Arjomand, Kandemir, Sivasubramaniam, Das —
//! ISCA 2016). This facade crate re-exports the whole workspace:
//!
//! - [`types`] — addresses, cache lines, word/chip sets, time, configuration.
//! - [`ecc`] — bit-level SECDED(72,64) and XOR parity (PCC) reconstruction.
//! - [`device`] — PCM chips, banks, 10-chip ranks, DIMM status registers.
//! - [`ctrl`] — memory-controller substrate: queues, drain policy, FR-FCFS,
//!   DDR3-style timing.
//! - [`core`] — the paper's contribution: fine-grained essential-word
//!   writes, RoW, WoW, data and ECC/PCC rotation, the PCMap scheduler.
//! - [`cpu`] — simplified out-of-order cores and a write-back cache
//!   hierarchy with per-word dirty masks.
//! - [`workloads`] — calibrated SPEC/PARSEC/STREAM workload models.
//! - [`obs`] — telemetry: metric registry and mergeable snapshots, the
//!   request-lifecycle event log, latency percentiles, windowed series,
//!   JSON/CSV export (DESIGN.md §8).
//! - [`par`] — deterministic parallel execution: the vendored scoped
//!   thread pool behind `--jobs N` (DESIGN.md §9).
//! - [`sim`] — the full-system simulator and the paper's experiment registry.
//!
//! ## Quickstart
//!
//! ```
//! use pcmap::sim::{SimConfig, System};
//! use pcmap::core::SystemKind;
//! use pcmap::workloads::catalog;
//!
//! // Run a short canneal simulation under the full PCMap design.
//! let workload = catalog::by_name("canneal").expect("known workload");
//! let cfg = SimConfig::paper_default(SystemKind::RwowRde).with_requests(2_000);
//! let report = System::new(cfg, workload).run();
//! assert!(report.reads_completed > 0);
//! println!("IRLP = {:.2}", report.irlp());
//! ```

#![warn(missing_docs)]

pub use pcmap_core as core;
pub use pcmap_cpu as cpu;
pub use pcmap_ctrl as ctrl;
pub use pcmap_device as device;
pub use pcmap_ecc as ecc;
pub use pcmap_obs as obs;
pub use pcmap_par as par;
pub use pcmap_sim as sim;
pub use pcmap_types as types;
pub use pcmap_workloads as workloads;
