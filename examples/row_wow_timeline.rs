//! Reproduces the paper's Figure 5 scheduling examples as chip-occupancy
//! timelines: RoW (a read reconstructed during a single-word write) and
//! WoW (three writes with disjoint essential words consolidated).
//!
//! Run with: `cargo run --release --example row_wow_timeline`

use pcmap::core::{PcmapController, SystemKind};
use pcmap::ctrl::{BaselineController, ChipTrace, Controller, MemRequest, ReqId, ReqKind};
use pcmap::types::{BankId, CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams};

/// Renders the chip-timeline Gantt from a controller's event stream.
fn gantt(ctrl: &dyn Controller, bank: BankId) -> String {
    ChipTrace::from_events(ctrl.events()).render_gantt(bank, 4)
}

fn write_req(ctrl: &dyn Controller, id: u64, addr: u64, words: &[usize]) -> MemRequest {
    let org = MemOrg::tiny();
    let a = PhysAddr::new(addr);
    let loc = org.decode(a);
    let old = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
    let mut data = old;
    for &w in words {
        data.set_word(w, !old.word(w));
    }
    MemRequest {
        id: ReqId(id),
        kind: ReqKind::Write { data },
        line: a.line(),
        loc,
        core: CoreId(0),
        arrival: Cycle(0),
    }
}

fn read_req(id: u64, addr: u64, at: Cycle) -> MemRequest {
    let org = MemOrg::tiny();
    let a = PhysAddr::new(addr);
    MemRequest {
        id: ReqId(id),
        kind: ReqKind::Read,
        line: a.line(),
        loc: org.decode(a),
        core: CoreId(0),
        arrival: at,
    }
}

fn drive(ctrl: &mut dyn Controller, mut now: Cycle) {
    ctrl.step(now);
    while let Some(wake) = ctrl.next_wake(now) {
        now = wake;
        ctrl.step(now);
        if now.0 > 10_000 {
            break;
        }
    }
    ctrl.settle(Cycle::MAX);
}

fn row_scenario(ctrl: &mut dyn Controller) {
    ctrl.set_trace(true);
    let w = write_req(ctrl, 1, 0, &[3]);
    ctrl.enqueue_write(w, Cycle(0)).expect("queue empty");
    ctrl.step(Cycle(0));
    ctrl.enqueue_read(read_req(2, 64, Cycle(1)), Cycle(1))
        .expect("queue empty");
    ctrl.enqueue_read(read_req(3, 128, Cycle(1)), Cycle(1))
        .expect("queue empty");
    drive(ctrl, Cycle(1));
}

fn wow_scenario(ctrl: &mut dyn Controller) {
    ctrl.set_trace(true);
    let a = write_req(ctrl, 1, 0, &[2, 5]);
    let b = write_req(ctrl, 2, 1024, &[3, 6]);
    let c = write_req(ctrl, 3, 2048, &[4]);
    ctrl.enqueue_write(a, Cycle(0)).expect("queue empty");
    ctrl.enqueue_write(b, Cycle(0)).expect("queue empty");
    ctrl.enqueue_write(c, Cycle(0)).expect("queue empty");
    drive(ctrl, Cycle(0));
}

fn main() {
    let org = MemOrg::tiny();
    let t = TimingParams::paper_default();
    let q = QueueParams::paper_default();
    let bank = org.decode(PhysAddr::new(0)).bank;

    println!("Chip-occupancy timelines (4 cycles per column, last label char per op)");
    println!("rows: data chips 0-7, then the ECC and PCC chips\n");

    println!("— Baseline: write A (word 3), then reads B, C serialize —");
    let mut base = BaselineController::new(org, t, q, 0);
    row_scenario(&mut base);
    print!("{}", gantt(&base, bank));

    println!("\n— RoW: B and C reconstructed from PCC during A; verify (V) after —");
    let mut row = PcmapController::new(SystemKind::RowNr, org, t, q, 0);
    row.set_overlap_reads_in_normal(true);
    row_scenario(&mut row);
    print!("{}", gantt(&row, bank));

    println!("\n— Baseline: writes A{{2,5}}, B{{3,6}}, C{{4}} serialize —");
    let mut base2 = BaselineController::new(org, t, q, 0);
    wow_scenario(&mut base2);
    print!("{}", gantt(&base2, bank));

    println!("\n— WoW (RWoW-RDE): disjoint writes consolidated; E/P = check updates —");
    let mut wow = PcmapController::new(SystemKind::RwowRde, org, t, q, 0);
    wow_scenario(&mut wow);
    print!("{}", gantt(&wow, bank));
}
