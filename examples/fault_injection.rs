//! Fault injection: flip bits in the PCM array and watch the SECDED and
//! PCC machinery handle them — correction on reads, detection of double
//! faults, and erasure reconstruction interacting with a real fault.
//!
//! Run with: `cargo run --release --example fault_injection`

use pcmap::device::PcmRank;
use pcmap::ecc::line::LineCheck;
use pcmap::types::{BankId, ColAddr, MemOrg, RowAddr};

fn main() {
    let org = MemOrg::tiny();
    let mut rank = PcmRank::new(org);
    let (bank, row, col) = (BankId(0), RowAddr(3), ColAddr(2));
    let codec = rank.storage().codec();

    let pristine = rank.read_line(bank, row, col);
    println!("stored word 5: {:016x}", pristine.data.word(5));

    // 1. A single-bit fault: SECDED corrects it transparently.
    rank.storage_mut().inject_bit_error(bank, row, col, 5, 17);
    let faulty = rank.read_line(bank, row, col);
    println!("after 1-bit fault: {:016x}", faulty.data.word(5));
    match codec.verify(&faulty.data, faulty.ecc) {
        LineCheck::Corrected { line, words } => {
            println!("SECDED corrected words {words:?}");
            assert_eq!(line.word(5), pristine.data.word(5));
        }
        other => panic!("expected correction, got {other:?}"),
    }

    // 2. Erasure reconstruction also recovers the pre-fault word: the PCC
    //    parity was computed over the clean data, so rebuilding word 5
    //    from the other chips bypasses the fault entirely.
    let mut partial = faulty.data;
    partial.set_word(5, 0); // pretend chip 5 is busy with a write
    let rebuilt = codec.reconstruct(&partial, 5, faulty.pcc);
    println!("reconstructed word 5: {:016x}", rebuilt.word(5));
    assert_eq!(rebuilt.word(5), pristine.data.word(5));

    // 3. A second fault in the same word: detectable but uncorrectable.
    rank.storage_mut().inject_bit_error(bank, row, col, 5, 44);
    let dead = rank.read_line(bank, row, col);
    match codec.verify(&dead.data, dead.ecc) {
        LineCheck::Uncorrectable { words } => {
            println!("double fault detected (uncorrectable) in words {words:?}")
        }
        other => panic!("expected detection, got {other:?}"),
    }

    // 4. A fresh write re-establishes clean ECC/PCC state.
    let mut newdata = dead.data;
    newdata.set_word(5, 0x1234_5678_9abc_def0);
    rank.write_line(bank, row, col, newdata);
    let healed = rank.read_line(bank, row, col);
    assert!(codec.verify(&healed.data, healed.ecc).is_clean());
    println!("rewrite heals the line: ECC clean again");
}
