//! The functional path: run a small synthetic program through the real
//! write-back cache hierarchy and let its *organic* per-word dirty masks
//! drive PCM differential writes — no calibrated distributions involved.
//!
//! Demonstrates §III-B of the paper from first principles: a program that
//! updates a few fields per object produces write-backs with small
//! essential-word counts, measured here end to end.
//!
//! Run with: `cargo run --release --example cache_hierarchy`

use pcmap::cpu::{AccessKind, Hierarchy, HierarchyConfig, MemAccess};
use pcmap::device::PcmRank;
use pcmap::types::{MemOrg, PhysAddr, Xoshiro256};

fn main() {
    let org = MemOrg::tiny();
    let mut rank = PcmRank::new(org);
    let mut hierarchy = Hierarchy::new(HierarchyConfig::small());
    let mut rng = Xoshiro256::new(2024);

    // A linked-record workload: 64K 64-byte "objects" (4 MB — far larger
    // than the scaled-down LLC, so lines age out and write back
    // naturally); each step updates one or two 8-byte fields of a random
    // object.
    let objects = 65_536u64;
    let mut essential_hist = [0u64; 9];
    let mut writebacks = 0u64;

    let apply =
        |rank: &mut PcmRank, traffic: Vec<MemAccess>, hist: &mut [u64; 9], wbs: &mut u64| {
            for t in traffic {
                if let MemAccess::WriteBack(ev) = t {
                    let loc = org.decode(ev.addr);
                    // The rank's differential write finds the *essential* words
                    // (some dirty-marked words may be silent stores).
                    let outcome = rank.write_words(loc.bank, loc.row, loc.col, ev.data, ev.dirty);
                    hist[outcome.essential.count()] += 1;
                    *wbs += 1;
                }
            }
        };

    for step in 0..200_000u64 {
        let obj = rng.next_below(objects);
        let base = obj * 64;
        let field = rng.next_below(8) as usize;
        let addr = PhysAddr::new(base + field as u64 * 8);
        let value = step; // evolving field value
        let fetch = |a: PhysAddr| {
            let loc = org.decode(a);
            rank.read_line(loc.bank, loc.row, loc.col).data
        };
        let traffic = hierarchy.access(addr, AccessKind::Write, Some(value), fetch);
        apply(&mut rank, traffic, &mut essential_hist, &mut writebacks);

        // Occasionally touch a second field of the same object.
        if rng.chance(0.3) {
            let f2 = rng.next_below(8) as usize;
            let a2 = PhysAddr::new(base + f2 as u64 * 8);
            let fetch = |a: PhysAddr| {
                let loc = org.decode(a);
                rank.read_line(loc.bank, loc.row, loc.col).data
            };
            let traffic = hierarchy.access(a2, AccessKind::Write, Some(step ^ 0xff), fetch);
            apply(&mut rank, traffic, &mut essential_hist, &mut writebacks);
        }
    }

    // Flush what's left so every dirty line reaches PCM.
    for ev in hierarchy.flush() {
        let loc = org.decode(ev.addr);
        let outcome = rank.write_words(loc.bank, loc.row, loc.col, ev.data, ev.dirty);
        essential_hist[outcome.essential.count()] += 1;
        writebacks += 1;
    }

    println!("write-backs reaching PCM: {writebacks}");
    println!("\nessential words per write-back (organic, via the real hierarchy):");
    let total: u64 = essential_hist.iter().sum();
    let mut mean = 0.0;
    for (i, &n) in essential_hist.iter().enumerate() {
        let pct = n as f64 * 100.0 / total as f64;
        // pcmap-lint: allow(float-accumulation, reason = "example's final histogram mean, computed once at print time")
        mean += i as f64 * n as f64 / total as f64;
        println!(
            "  {i} words: {pct:5.1}%  {}",
            "#".repeat((pct / 2.0) as usize)
        );
    }
    println!("\nmean essential words: {mean:.2} (paper reports ~2.4 across SPEC)");
    let [l1, l2, llc] = hierarchy.hit_miss();
    println!("cache hits/misses — L1 {l1:?}  L2 {l2:?}  LLC {llc:?}");
    let _ = &rank;
}
