//! Build a custom application profile and evaluate how PCMap responds to
//! its write geometry.
//!
//! Two synthetic applications with identical memory intensity but opposite
//! write shapes: `sparse-logger` dirties one word per write-back (ideal for
//! RoW/WoW), `bulk-copier` rewrites whole lines (nothing to overlap).
//!
//! Run with: `cargo run --release --example custom_workload`

use pcmap::core::SystemKind;
use pcmap::sim::{SimConfig, System};
use pcmap::workloads::catalog::{Workload, WorkloadKind};
use pcmap::workloads::AppProfile;

fn profile(name: &'static str, dirty_hist: [f64; 9]) -> AppProfile {
    AppProfile {
        name,
        rpki: 8.0,
        wpki: 6.0,
        dirty_hist,
        row_locality: 0.5,
        offset_corr: 0.32,
        footprint_lines: 1 << 18,
        rollback_p: 0.013,
    }
}

fn main() {
    // One-word write-backs vs full-line write-backs.
    let sparse = profile(
        "sparse-logger",
        [2.0, 80.0, 10.0, 4.0, 2.0, 1.0, 0.5, 0.3, 0.2],
    );
    let bulk = profile(
        "bulk-copier",
        [0.5, 1.0, 1.5, 2.0, 5.0, 10.0, 15.0, 25.0, 40.0],
    );

    for app in [sparse, bulk] {
        let workload = Workload {
            name: app.name.to_owned(),
            per_core: vec![app; 8],
            kind: WorkloadKind::MultiThreaded,
        };
        println!(
            "{} (mean essential words {:.2}):",
            workload.name,
            workload.mean_dirty_words()
        );
        let mut baseline_ipc = 0.0;
        for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
            let cfg = SimConfig::paper_default(kind).with_requests(10_000);
            let report = System::new(cfg, workload.clone()).run();
            if kind == SystemKind::Baseline {
                baseline_ipc = report.ipc();
                println!(
                    "  {:9}  IPC {:.3}   IRLP {:.2}",
                    kind.label(),
                    report.ipc(),
                    report.irlp_mean
                );
            } else {
                println!(
                    "  {:9}  IPC {:.3}   IRLP {:.2}   (IPC {:+.1}%)",
                    kind.label(),
                    report.ipc(),
                    report.irlp_mean,
                    (report.ipc() / baseline_ipc - 1.0) * 100.0
                );
            }
        }
        println!();
    }
    println!("Sparse write-backs leave chips idle for PCMap to reclaim;");
    println!("full-line write-backs leave nothing to overlap.");
}
