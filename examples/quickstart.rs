//! Quickstart: simulate one workload under the baseline and the full PCMap
//! design, and compare the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use pcmap::core::SystemKind;
use pcmap::sim::{SimConfig, System};
use pcmap::workloads::catalog;

fn main() {
    let workload = catalog::by_name("canneal").expect("canneal is in the catalog");
    println!(
        "workload: {} (RPKI {:.2}, WPKI {:.2}, mean essential words {:.2})\n",
        workload.name,
        workload.rpki(),
        workload.wpki(),
        workload.mean_dirty_words()
    );

    for kind in [SystemKind::Baseline, SystemKind::RwowRde] {
        let cfg = SimConfig::paper_default(kind).with_requests(12_000);
        let report = System::new(cfg, workload.clone()).run();
        println!("{}:", kind.label());
        println!("  IPC                  {:.3}", report.ipc());
        println!(
            "  effective read lat.  {:.1} mem cycles",
            report.mean_read_latency
        );
        println!(
            "  write throughput     {:.1} writes/kcycle",
            report.write_throughput
        );
        println!(
            "  IRLP during writes   {:.2} (max {:.2})",
            report.irlp_mean, report.irlp_max
        );
        println!("  reads served by RoW  {}", report.reads_via_row);
        println!("  WoW consolidations   {}", report.wow_overlaps);
        println!();
    }
    println!("PCMap frees the chips a write leaves idle: higher IRLP, more");
    println!("write consolidation, lower effective read latency, better IPC.");
}
