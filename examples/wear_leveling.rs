//! Wear leveling under rotation (§IV-C2 of the paper).
//!
//! Every write updates its ECC and PCC check words. With those words pinned
//! to two dedicated chips, the check chips absorb one update per write and
//! wear out first; rotating them across the rank levels the traffic. This
//! example measures per-chip write counts directly.
//!
//! Run with: `cargo run --release --example wear_leveling`

use pcmap::core::{PcmapController, SystemKind};
use pcmap::ctrl::{Controller, MemRequest, ReqId, ReqKind};
use pcmap::types::{
    ChipId, CoreId, Cycle, MemOrg, PhysAddr, QueueParams, TimingParams, Xoshiro256,
};

fn hammer(kind: SystemKind) -> PcmapController {
    let org = MemOrg::tiny();
    let mut ctrl = PcmapController::new(
        kind,
        org,
        TimingParams::paper_default(),
        QueueParams::paper_default(),
        1,
    );
    let mut rng = Xoshiro256::new(7);
    let mut now = Cycle(0);
    for k in 0..3_000u64 {
        // pcmap-lint: allow(manual-time-advance, reason = "example driver models request arrival times, not the engine clock")
        now = Cycle(now.0 + rng.next_below(25));
        let addr = PhysAddr::new(rng.next_below(128) * 64);
        let loc = org.decode(addr);
        let stored = ctrl.rank().read_line(loc.bank, loc.row, loc.col).data;
        let mut data = stored;
        data.set_word(rng.next_below(8) as usize, rng.next_u64());
        let req = MemRequest {
            id: ReqId(k + 1),
            kind: ReqKind::Write { data },
            line: addr.line(),
            loc,
            core: CoreId(0),
            arrival: now,
        };
        let _ = ctrl.enqueue_write(req, now);
        ctrl.step(now);
    }
    while let Some(wake) = ctrl.next_wake(now) {
        now = wake;
        ctrl.step(now);
        if now.0 > 10_000_000 {
            break;
        }
    }
    ctrl
}

fn report(label: &str, ctrl: &PcmapController) {
    println!("{label}:");
    let wear = ctrl.rank().wear();
    let max = (0..ChipId::TOTAL_CHIPS)
        .map(|i| wear.word_writes(ChipId(i as u8)))
        .max()
        .unwrap_or(1)
        .max(1);
    for i in 0..ChipId::TOTAL_CHIPS {
        let chip = ChipId(i as u8);
        let n = wear.word_writes(chip);
        let bar = "#".repeat((n * 40 / max) as usize);
        let name = match i {
            8 => "ECC ".to_owned(),
            9 => "PCC ".to_owned(),
            k => format!("ch{k}  "),
        };
        println!("  {name} {n:>6} {bar}");
    }
    println!("  imbalance (hottest / mean): {:.2}\n", wear.imbalance());
}

fn main() {
    println!("per-chip word-write counts after 3000 single-word writes\n");
    let fixed = hammer(SystemKind::RwowNr);
    report("fixed layout (ECC on chip 8, PCC on chip 9)", &fixed);
    let rotated = hammer(SystemKind::RwowRde);
    report("rotated layout (ECC/PCC spread RAID-5 style)", &rotated);
    println!("PCM cells wear out with programming: the fixed check chips take one");
    println!("update per write and die first; rotation levels the traffic, which");
    println!("is the paper's lifetime argument for RWoW-RDE.");
}
