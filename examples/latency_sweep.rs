//! Sensitivity sweep: how PCMap's benefit grows with the write:read
//! latency ratio (the paper's Table III experiment, via the public API).
//!
//! Run with: `cargo run --release --example latency_sweep`

use pcmap::core::SystemKind;
use pcmap::sim::{SimConfig, System};
use pcmap::types::TimingParams;
use pcmap::workloads::catalog;

fn main() {
    let workload = catalog::by_name("MP4").expect("catalog workload");
    println!(
        "write latency pinned at 120 ns; read latency scaled (workload: {})\n",
        workload.name
    );
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}",
        "w:r ratio", "baseline IPC", "PCMap IPC", "gain"
    );
    for ratio in [2u64, 4, 6, 8] {
        let timing = TimingParams::paper_default().with_write_to_read_ratio(ratio);
        let run = |kind: SystemKind| {
            let cfg = SimConfig::paper_default(kind)
                .with_requests(8_000)
                .with_timing(timing);
            System::new(cfg, workload.clone()).run().ipc()
        };
        let base = run(SystemKind::Baseline);
        let pcmap = run(SystemKind::RwowRde);
        println!(
            "{:>9}x  {:>12.3}  {:>12.3}  {:>9.1}%",
            ratio,
            base,
            pcmap,
            (pcmap / base - 1.0) * 100.0
        );
    }
    println!("\nThe slower writes are relative to reads, the more the baseline");
    println!("serializes behind them — and the more parallelism PCMap reclaims.");
}
